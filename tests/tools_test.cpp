// Stream-level tests of the tgroom CLI command layer.
#include <gtest/gtest.h>

#include <sstream>

#include "tools/commands.hpp"

namespace tgroom::tools {
namespace {

struct ToolRun {
  int exit_code;
  std::string out;
  std::string err;
};

ToolRun run(std::vector<std::string> argv_strings,
            const std::string& stdin_text = "") {
  std::vector<const char*> argv{"tgroom"};
  for (const auto& s : argv_strings) argv.push_back(s.c_str());
  std::istringstream in(stdin_text);
  std::ostringstream out, err;
  int code = run_tool(static_cast<int>(argv.size()), argv.data(), in, out,
                      err);
  return {code, out.str(), err.str()};
}

TEST(Tool, NoArgsPrintsUsage) {
  ToolRun r = run({});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("tgroom <command>"), std::string::npos);
}

TEST(Tool, HelpSucceeds) {
  ToolRun r = run({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST(Tool, UnknownCommandFails) {
  ToolRun r = run({"frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Tool, GeneratePatterns) {
  for (std::string pattern : {"random", "regular", "all-to-all", "hub"}) {
    ToolRun r = run({"generate", "--pattern", pattern, "--n", "12", "--r",
                     "4", "--dense", "0.4", "--hubs", "2"});
    EXPECT_EQ(r.exit_code, 0) << pattern << ": " << r.err;
    EXPECT_NE(r.out.find("pattern=" + pattern), std::string::npos);
  }
  EXPECT_EQ(run({"generate", "--pattern", "nope"}).exit_code, 2);
}

TEST(Tool, GenerateIsSeedDeterministic) {
  ToolRun a = run({"generate", "--n", "10", "--seed", "4"});
  ToolRun b = run({"generate", "--n", "10", "--seed", "4"});
  ToolRun c = run({"generate", "--n", "10", "--seed", "5"});
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out, c.out);
}

TEST(Tool, GroomThenSimulatePipeline) {
  ToolRun demands = run({"generate", "--n", "14", "--dense", "0.5"});
  ASSERT_EQ(demands.exit_code, 0);
  ToolRun plan = run({"groom", "--k", "4", "--algorithm", "spant"},
                     demands.out);
  ASSERT_EQ(plan.exit_code, 0) << plan.err;
  EXPECT_NE(plan.out.find("algorithm=SpanT_Euler"), std::string::npos);
  ToolRun sim = run({"simulate"}, plan.out);
  EXPECT_EQ(sim.exit_code, 0) << sim.err;
  EXPECT_NE(sim.out.find("valid:             yes"), std::string::npos);
}

TEST(Tool, SurviveReportsRecovery) {
  ToolRun demands = run({"generate", "--n", "10", "--dense", "0.4"});
  ToolRun plan = run({"groom", "--k", "3"}, demands.out);
  ToolRun survive = run({"survive"}, plan.out);
  EXPECT_EQ(survive.exit_code, 0) << survive.err;
  EXPECT_NE(survive.out.find("all single span failures recovered"),
            std::string::npos);
}

TEST(Tool, CompareListsAlgorithms) {
  ToolRun demands = run({"generate", "--pattern", "regular", "--n", "12",
                         "--r", "4"});
  ToolRun compare = run({"compare", "--k", "6"}, demands.out);
  EXPECT_EQ(compare.exit_code, 0) << compare.err;
  EXPECT_NE(compare.out.find("SpanT_Euler"), std::string::npos);
  // Regular traffic: Regular_Euler participates.
  EXPECT_NE(compare.out.find("Regular_Euler"), std::string::npos);
}

TEST(Tool, CompareSkipsRegularEulerOnIrregularTraffic) {
  ToolRun demands = run({"generate", "--pattern", "hub", "--n", "12",
                         "--hubs", "2"});
  ToolRun compare = run({"compare", "--k", "4"}, demands.out);
  EXPECT_EQ(compare.exit_code, 0) << compare.err;
  EXPECT_EQ(compare.out.find("Regular_Euler"), std::string::npos);
}

TEST(Tool, GroomWithAnnealStillValid) {
  ToolRun demands = run({"generate", "--n", "14", "--dense", "0.6"});
  ToolRun plain = run({"groom", "--k", "4"}, demands.out);
  ToolRun annealed = run({"groom", "--k", "4", "--anneal",
                          "--anneal-iterations", "3000"},
                         demands.out);
  ASSERT_EQ(annealed.exit_code, 0) << annealed.err;
  ToolRun sim = run({"simulate"}, annealed.out);
  EXPECT_EQ(sim.exit_code, 0) << sim.err;
  auto sadms = [](const std::string& header) {
    auto pos = header.find("sadms=");
    return std::atoll(header.c_str() + pos + 6);
  };
  EXPECT_LE(sadms(annealed.out), sadms(plain.out));
}

TEST(Tool, GroomRejectsUnknownAlgorithm) {
  ToolRun demands = run({"generate", "--n", "8"});
  ToolRun r = run({"groom", "--algorithm", "quantum"}, demands.out);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown algorithm"), std::string::npos);
}

TEST(Tool, GroomRejectsGarbageInput) {
  ToolRun r = run({"groom", "--k", "4"}, "not a demand file");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(Tool, SimulateFlagsBadPlan) {
  // Two pairs on the same wavelength+timeslot.
  std::string bad_plan = "8 4 2\n0 1 0 0\n2 3 0 0\n";
  ToolRun r = run({"simulate"}, bad_plan);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("NO"), std::string::npos);
}

TEST(Tool, GrowExtendsPlanInPlace) {
  ToolRun demands = run({"generate", "--n", "12", "--dense", "0.4"});
  ToolRun plan = run({"groom", "--k", "4"}, demands.out);
  ToolRun grown = run({"grow", "--add", "0-6,1-7"}, plan.out);
  ASSERT_EQ(grown.exit_code, 0) << grown.err;
  EXPECT_NE(grown.out.find("added=2"), std::string::npos);
  ToolRun sim = run({"simulate"}, grown.out);
  EXPECT_EQ(sim.exit_code, 0) << sim.err;
}

TEST(Tool, GrowRejectsEmptyOrBadSpec) {
  ToolRun demands = run({"generate", "--n", "8", "--dense", "0.4"});
  ToolRun plan = run({"groom", "--k", "4"}, demands.out);
  EXPECT_EQ(run({"grow"}, plan.out).exit_code, 1);
  EXPECT_EQ(run({"grow", "--add", "garbage"}, plan.out).exit_code, 1);
}

TEST(Tool, GadgetRoundTrip) {
  // Octahedron: even degrees -> a valid gadget input.
  std::ostringstream graph;
  graph << "6 12\n";
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      if (v - u != 3) graph << u << ' ' << v << '\n';
    }
  }
  ToolRun r = run({"gadget"}, graph.str());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("delta=4"), std::string::npos);
}

TEST(Tool, GadgetRejectsOddDegrees) {
  ToolRun r = run({"gadget"}, "2 1\n0 1\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("even degrees"), std::string::npos);
}

TEST(Tool, AlgorithmAliasesResolve) {
  ToolRun demands = run({"generate", "--n", "10", "--dense", "0.4"});
  for (std::string alias : {"algo1", "algo2", "algo3", "clique",
                            "SpanT_Euler"}) {
    ToolRun r = run({"groom", "--k", "4", "--algorithm", alias},
                    demands.out);
    EXPECT_EQ(r.exit_code, 0) << alias << ": " << r.err;
  }
}

}  // namespace
}  // namespace tgroom::tools
