// Stream-level tests of the tgroom CLI command layer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "store/snapshot.hpp"

#include "grooming/incremental.hpp"
#include "grooming/plan.hpp"
#include "service/protocol.hpp"
#include "tools/commands.hpp"
#include "util/json.hpp"

namespace tgroom::tools {
namespace {

struct ToolRun {
  int exit_code;
  std::string out;
  std::string err;
};

ToolRun run(std::vector<std::string> argv_strings,
            const std::string& stdin_text = "") {
  std::vector<const char*> argv{"tgroom"};
  for (const auto& s : argv_strings) argv.push_back(s.c_str());
  std::istringstream in(stdin_text);
  std::ostringstream out, err;
  int code = run_tool(static_cast<int>(argv.size()), argv.data(), in, out,
                      err);
  return {code, out.str(), err.str()};
}

TEST(Tool, NoArgsPrintsUsage) {
  ToolRun r = run({});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("tgroom <command>"), std::string::npos);
}

TEST(Tool, HelpSucceeds) {
  ToolRun r = run({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST(Tool, UnknownCommandFails) {
  ToolRun r = run({"frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Tool, GeneratePatterns) {
  for (std::string pattern : {"random", "regular", "all-to-all", "hub"}) {
    ToolRun r = run({"generate", "--pattern", pattern, "--n", "12", "--r",
                     "4", "--dense", "0.4", "--hubs", "2"});
    EXPECT_EQ(r.exit_code, 0) << pattern << ": " << r.err;
    EXPECT_NE(r.out.find("pattern=" + pattern), std::string::npos);
  }
  EXPECT_EQ(run({"generate", "--pattern", "nope"}).exit_code, 2);
}

TEST(Tool, GenerateIsSeedDeterministic) {
  ToolRun a = run({"generate", "--n", "10", "--seed", "4"});
  ToolRun b = run({"generate", "--n", "10", "--seed", "4"});
  ToolRun c = run({"generate", "--n", "10", "--seed", "5"});
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out, c.out);
}

TEST(Tool, GroomThenSimulatePipeline) {
  ToolRun demands = run({"generate", "--n", "14", "--dense", "0.5"});
  ASSERT_EQ(demands.exit_code, 0);
  ToolRun plan = run({"groom", "--k", "4", "--algorithm", "spant"},
                     demands.out);
  ASSERT_EQ(plan.exit_code, 0) << plan.err;
  EXPECT_NE(plan.out.find("algorithm=SpanT_Euler"), std::string::npos);
  ToolRun sim = run({"simulate"}, plan.out);
  EXPECT_EQ(sim.exit_code, 0) << sim.err;
  EXPECT_NE(sim.out.find("valid:             yes"), std::string::npos);
}

TEST(Tool, SurviveReportsRecovery) {
  ToolRun demands = run({"generate", "--n", "10", "--dense", "0.4"});
  ToolRun plan = run({"groom", "--k", "3"}, demands.out);
  ToolRun survive = run({"survive"}, plan.out);
  EXPECT_EQ(survive.exit_code, 0) << survive.err;
  EXPECT_NE(survive.out.find("all single span failures recovered"),
            std::string::npos);
}

TEST(Tool, CompareListsAlgorithms) {
  ToolRun demands = run({"generate", "--pattern", "regular", "--n", "12",
                         "--r", "4"});
  ToolRun compare = run({"compare", "--k", "6"}, demands.out);
  EXPECT_EQ(compare.exit_code, 0) << compare.err;
  EXPECT_NE(compare.out.find("SpanT_Euler"), std::string::npos);
  // Regular traffic: Regular_Euler participates.
  EXPECT_NE(compare.out.find("Regular_Euler"), std::string::npos);
}

TEST(Tool, CompareSkipsRegularEulerOnIrregularTraffic) {
  ToolRun demands = run({"generate", "--pattern", "hub", "--n", "12",
                         "--hubs", "2"});
  ToolRun compare = run({"compare", "--k", "4"}, demands.out);
  EXPECT_EQ(compare.exit_code, 0) << compare.err;
  EXPECT_EQ(compare.out.find("Regular_Euler"), std::string::npos);
}

TEST(Tool, GroomWithAnnealStillValid) {
  ToolRun demands = run({"generate", "--n", "14", "--dense", "0.6"});
  ToolRun plain = run({"groom", "--k", "4"}, demands.out);
  ToolRun annealed = run({"groom", "--k", "4", "--anneal",
                          "--anneal-iterations", "3000"},
                         demands.out);
  ASSERT_EQ(annealed.exit_code, 0) << annealed.err;
  ToolRun sim = run({"simulate"}, annealed.out);
  EXPECT_EQ(sim.exit_code, 0) << sim.err;
  auto sadms = [](const std::string& header) {
    auto pos = header.find("sadms=");
    return std::atoll(header.c_str() + pos + 6);
  };
  EXPECT_LE(sadms(annealed.out), sadms(plain.out));
}

TEST(Tool, GroomRejectsUnknownAlgorithm) {
  ToolRun demands = run({"generate", "--n", "8"});
  ToolRun r = run({"groom", "--algorithm", "quantum"}, demands.out);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown algorithm"), std::string::npos);
}

TEST(Tool, GroomRejectsGarbageInput) {
  ToolRun r = run({"groom", "--k", "4"}, "not a demand file");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(Tool, SimulateFlagsBadPlan) {
  // Two pairs on the same wavelength+timeslot.
  std::string bad_plan = "8 4 2\n0 1 0 0\n2 3 0 0\n";
  ToolRun r = run({"simulate"}, bad_plan);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("NO"), std::string::npos);
}

TEST(Tool, GrowExtendsPlanInPlace) {
  ToolRun demands = run({"generate", "--n", "12", "--dense", "0.4"});
  ToolRun plan = run({"groom", "--k", "4"}, demands.out);
  ToolRun grown = run({"grow", "--add", "0-6,1-7"}, plan.out);
  ASSERT_EQ(grown.exit_code, 0) << grown.err;
  EXPECT_NE(grown.out.find("added=2"), std::string::npos);
  ToolRun sim = run({"simulate"}, grown.out);
  EXPECT_EQ(sim.exit_code, 0) << sim.err;
}

TEST(Tool, GrowRejectsEmptyOrBadSpec) {
  ToolRun demands = run({"generate", "--n", "8", "--dense", "0.4"});
  ToolRun plan = run({"groom", "--k", "4"}, demands.out);
  EXPECT_EQ(run({"grow"}, plan.out).exit_code, 1);
  EXPECT_EQ(run({"grow", "--add", "garbage"}, plan.out).exit_code, 1);
}

TEST(Tool, GadgetRoundTrip) {
  // Octahedron: even degrees -> a valid gadget input.
  std::ostringstream graph;
  graph << "6 12\n";
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      if (v - u != 3) graph << u << ' ' << v << '\n';
    }
  }
  ToolRun r = run({"gadget"}, graph.str());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("delta=4"), std::string::npos);
}

TEST(Tool, GadgetRejectsOddDegrees) {
  ToolRun r = run({"gadget"}, "2 1\n0 1\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("even degrees"), std::string::npos);
}

TEST(Tool, AlgorithmAliasesResolve) {
  ToolRun demands = run({"generate", "--n", "10", "--dense", "0.4"});
  for (std::string alias : {"algo1", "algo2", "algo3", "clique",
                            "SpanT_Euler"}) {
    ToolRun r = run({"groom", "--k", "4", "--algorithm", alias},
                    demands.out);
    EXPECT_EQ(r.exit_code, 0) << alias << ": " << r.err;
  }
}

TEST(Tool, GroomFormatJsonMatchesTextPath) {
  ToolRun demands = run({"generate", "--n", "12", "--dense", "0.5"});
  ToolRun text = run({"groom", "--k", "4"}, demands.out);
  ToolRun json = run({"groom", "--k", "4", "--format", "json"}, demands.out);
  ASSERT_EQ(json.exit_code, 0) << json.err;
  JsonValue v = parse_json(json.out);
  auto pos = text.out.find("sadms=");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(v.find("sadms")->as_int(),
            std::atoll(text.out.c_str() + pos + 6));
  EXPECT_EQ(v.find("algorithm")->string, "SpanT_Euler");
  // The embedded plan is the same plan the text path emits.
  GroomingPlan from_json = plan_from_json(*v.find("plan"));
  std::string text_plan = text.out.substr(text.out.find('\n') + 1);
  EXPECT_EQ(serialize_plan(from_json), text_plan);
  EXPECT_EQ(run({"groom", "--format", "yaml"}, demands.out).exit_code, 2);
}

TEST(Tool, ProvisionSharesServicePipeline) {
  ToolRun demands = run({"generate", "--n", "12", "--dense", "0.4"});
  ToolRun plan_run = run({"groom", "--k", "4"}, demands.out);
  std::string plan_text = plan_run.out.substr(plan_run.out.find('\n') + 1);

  ToolRun cli = run({"provision", "--add", "0-6,1-7", "--format", "json"},
                    plan_text);
  ASSERT_EQ(cli.exit_code, 0) << cli.err;
  JsonValue v = parse_json(cli.out);
  EXPECT_EQ(v.find("added")->as_int(), 2);

  // Bit-for-bit against the direct library call the service op also makes.
  GroomingPlan base = parse_plan(plan_text);
  IncrementalResult direct = add_demands_incremental(
      base, {DemandPair{0, 6}, DemandPair{1, 7}});
  EXPECT_EQ(v.find("new_sadms")->as_int(), direct.new_sadms);
  EXPECT_EQ(v.find("new_wavelengths")->as_int(), direct.new_wavelengths);
  EXPECT_EQ(v.find("reused_sites")->as_int(), direct.reused_sites);
  EXPECT_EQ(serialize_plan(plan_from_json(*v.find("plan"))),
            serialize_plan(direct.plan));

  // Text mode mirrors `grow`'s report and emits the same plan.
  ToolRun text = run({"provision", "--add", "0-6,1-7"}, plan_text);
  ASSERT_EQ(text.exit_code, 0) << text.err;
  EXPECT_NE(text.out.find("added=2"), std::string::npos);
  EXPECT_EQ(text.out.substr(text.out.find('\n') + 1),
            serialize_plan(direct.plan));
}

TEST(Tool, SweepFormatJson) {
  ToolRun r = run({"sweep", "--pattern", "dense", "--n", "10", "--k", "4,8",
                   "--seeds", "2", "--algorithms", "spant,algo1", "--format",
                   "json"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  JsonValue v = parse_json(r.out);
  EXPECT_EQ(v.find("seeds")->as_int(), 2);
  const JsonValue* series = v.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array.size(), 2u);
  for (const JsonValue& s : series->array) {
    ASSERT_EQ(s.find("cells")->array.size(), 2u);
    for (const JsonValue& cell : s.find("cells")->array) {
      EXPECT_GT(cell.find("mean_sadms")->number, 0.0);
      EXPECT_GE(cell.find("mean_sadms")->number,
                cell.find("mean_lower_bound")->number);
    }
  }
  EXPECT_EQ(run({"sweep", "--format", "xml"}).exit_code, 2);
}

TEST(Tool, ServeSmokeSession) {
  // One groom + stats + shutdown through the stdin/stdout daemon path.
  std::string session =
      R"({"op":"groom","id":1,"graph":{"n":4,)"
      R"("edges":[[0,1],[1,2],[2,3],[0,3]]},"k":2,"include_partition":true})"
      "\n"
      R"({"op":"stats","id":2})"
      "\n"
      R"({"op":"shutdown","id":3})"
      "\n";
  ToolRun r = run({"serve", "--exit-metrics", "false"}, session);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  std::istringstream lines(r.out);
  std::string line;
  int responses = 0;
  while (std::getline(lines, line)) {
    JsonValue v = parse_json(line);
    EXPECT_TRUE(v.find("ok")->boolean) << line;
    ++responses;
  }
  EXPECT_EQ(responses, 3);
  EXPECT_EQ(run({"serve", "--queue", "0"}).exit_code, 2);
}

TEST(Tool, SimulateDynamicModeIsSeedDeterministic) {
  const std::vector<std::string> args = {
      "simulate", "--traffic", "poisson", "--events", "400",
      "--max-wavelengths", "2", "--k", "4", "--load", "2", "--seed", "6"};
  ToolRun a = run(args);
  ToolRun b = run(args);
  ASSERT_EQ(a.exit_code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out.find("traffic=poisson"), std::string::npos);
  EXPECT_NE(a.out.find("prop2 bound:       ok"), std::string::npos);
  // A different seed changes the outcome bytes.
  ToolRun c = run({"simulate", "--traffic", "poisson", "--events", "400",
                   "--max-wavelengths", "2", "--k", "4", "--load", "2",
                   "--seed", "7"});
  EXPECT_NE(a.out, c.out);
}

TEST(Tool, SimulateDynamicJsonAndModels) {
  for (std::string model : {"poisson", "diurnal", "flash"}) {
    ToolRun r = run({"simulate", "--traffic", model, "--events", "200",
                     "--format", "json"});
    ASSERT_EQ(r.exit_code, 0) << model << ": " << r.err;
    JsonValue v = parse_json(r.out);
    EXPECT_EQ(v.find("traffic")->string, model);
    EXPECT_EQ(v.find("arrivals")->as_int(), 200);
    EXPECT_TRUE(v.find("bound_ok")->boolean);
    EXPECT_FALSE(v.find("arrival_latency"));  // timing is opt-in
  }
  EXPECT_EQ(run({"simulate", "--traffic", "bursty"}).exit_code, 2);
  EXPECT_EQ(run({"simulate", "--traffic", "poisson", "--format", "xml"})
                .exit_code,
            2);
}

TEST(Tool, SimulateLoadSweepIsWorkerIndependent) {
  const std::vector<std::string> base = {
      "simulate", "--traffic", "poisson",  "--events", "150",
      "--k",      "2",         "--max-wavelengths", "1", "--load-steps",
      "4",        "--load-start", "0.5",   "--load-step", "2",
      "--threshold", "0.05",   "--format", "json"};
  std::vector<std::string> inline_args = base;
  ToolRun a = run(inline_args);
  ASSERT_EQ(a.exit_code, 0) << a.err;
  std::vector<std::string> threaded = base;
  threaded.push_back("--workers");
  threaded.push_back("4");
  ToolRun b = run(threaded);
  ASSERT_EQ(b.exit_code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);
  JsonValue v = parse_json(a.out);
  ASSERT_EQ(v.find("points")->array.size(), 4u);
  // High load against one k=2 wavelength must cross a 5% threshold.
  EXPECT_GE(v.find("threshold_index")->as_int(), 0);
}

TEST(Tool, SimulateLegacyPlanReportStillWorks) {
  // The original contract — plan file on stdin, no --traffic flag — must
  // be untouched by the dynamic mode.
  ToolRun demands = run({"generate", "--n", "10", "--dense", "0.5"});
  ToolRun plan = run({"groom", "--k", "4"}, demands.out);
  ASSERT_EQ(plan.exit_code, 0) << plan.err;
  ToolRun sim = run({"simulate"}, plan.out);
  EXPECT_EQ(sim.exit_code, 0) << sim.err;
  EXPECT_NE(sim.out.find("ring nodes:"), std::string::npos);
}

TEST(Tool, StoreDumpSummaryReportsVersionAndRecordCounts) {
  // Drive a short held-plan session with a release, then dump the store:
  // stderr carries the format version and per-record-type counts; stdout
  // stays the pure recovered-state listing.
  namespace fs = std::filesystem;
  const fs::path dir_path =
      fs::temp_directory_path() /
      ("tgroom_tools_store_" +
       std::to_string(static_cast<long long>(::getpid())));
  fs::remove_all(dir_path);
  const std::string dir = dir_path.string();
  std::string session =
      R"({"op":"groom","id":1,"graph":{"n":4,)"
      R"("edges":[[0,1],[1,2],[2,3],[0,3]]},"k":2,"hold":true})"
      "\n"
      R"({"op":"provision","id":2,"plan_id":1,"add":[[0,2]]})"
      "\n"
      R"({"op":"release","id":3,"plan_id":1,"remove":[[0,2]]})"
      "\n";
  ToolRun serve = run({"serve", "--exit-metrics", "false", "--data-dir", dir,
                       "--snapshot-every", "100000"},
                      session);
  ASSERT_EQ(serve.exit_code, 0) << serve.err;
  // A clean drain snapshots the final state; drop the snapshots so the
  // dump replays (and counts) the WAL records themselves, as after a
  // crash.
  for (const std::string& snap : list_snapshot_files(dir)) {
    fs::remove(snap);
  }
  ToolRun dump = run({"store-dump", "--data-dir", dir});
  EXPECT_EQ(dump.exit_code, 0) << dump.err;
  EXPECT_NE(dump.err.find("version=2"), std::string::npos) << dump.err;
  EXPECT_NE(dump.err.find("hold=1"), std::string::npos) << dump.err;
  EXPECT_NE(dump.err.find("provision=1"), std::string::npos) << dump.err;
  EXPECT_NE(dump.err.find("release=1"), std::string::npos) << dump.err;
  EXPECT_NE(dump.out.find("# tgroom store:"), std::string::npos);
  EXPECT_NE(dump.out.find("plans=1"), std::string::npos);
  fs::remove_all(dir_path);
  EXPECT_EQ(run({"store-dump"}).exit_code, 2);  // needs --data-dir
}

}  // namespace
}  // namespace tgroom::tools
