// release_demands: exact removal semantics, local repair quality, the
// Prop-2 fragment bound, and parity against fresh re-grooming of the
// residual demand set.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/incremental.hpp"
#include "grooming/repair.hpp"
#include "sonet/simulator.hpp"
#include "util/rng.hpp"

namespace tgroom {
namespace {

GroomingPlan base_plan(NodeId n, double dense, int k, std::uint64_t seed) {
  Rng rng(seed);
  DemandSet demands = random_traffic(n, dense, rng);
  Graph traffic = demands.traffic_graph();
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, traffic, k);
  return plan_from_partition(demands, traffic, p);
}

std::multiset<DemandPair> pair_multiset(const GroomingPlan& plan) {
  std::multiset<DemandPair> pairs;
  for (const GroomedPair& gp : plan.pairs) pairs.insert(gp.pair);
  return pairs;
}

/// The plan still simulates cleanly on the ring (slots unique, k respected).
void expect_valid(const GroomingPlan& plan) {
  UpsrRing ring(plan.ring_size);
  SimulationResult sim = simulate_plan(ring, plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
}

TEST(Release, RemovesExactlyTheRequestedPairs) {
  GroomingPlan plan = base_plan(12, 0.5, 4, 1);
  std::multiset<DemandPair> expected = pair_multiset(plan);
  const std::vector<DemandPair> remove = {plan.pairs[0].pair,
                                          plan.pairs[3].pair};
  for (const DemandPair& p : remove) expected.erase(expected.find(p));

  ReleaseStats stats = release_demands(plan, remove);
  EXPECT_EQ(stats.released, 2);
  EXPECT_EQ(pair_multiset(plan), expected);
  expect_valid(plan);
}

TEST(Release, NormalizesEndpointOrder) {
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 4;
  plan.pairs = {{DemandPair{0, 3}, 0, 0}, {DemandPair{2, 5}, 0, 1}};
  ReleaseStats stats = release_demands(plan, {DemandPair{5, 2}});
  EXPECT_EQ(stats.released, 1);
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_EQ(plan.pairs[0].pair, (DemandPair{0, 3}));
}

TEST(Release, DuplicateCircuitsReleaseLowestSlotFirst) {
  // Two circuits for the same pair; one release call removes exactly one —
  // the lowest (wavelength, timeslot) — and a second removes the other.
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 4;
  plan.pairs = {{DemandPair{1, 4}, 1, 0}, {DemandPair{1, 4}, 0, 2},
                {DemandPair{0, 5}, 0, 0}};
  release_demands(plan, {DemandPair{1, 4}}, /*repair=*/false);
  ASSERT_EQ(plan.pairs.size(), 2u);
  // The (0, 2) copy went first; the wavelength-1 copy survives (as the
  // only circuit there it may have been renumbered by compaction).
  int survivors = 0;
  for (const GroomedPair& gp : plan.pairs) {
    if (gp.pair == (DemandPair{1, 4})) ++survivors;
  }
  EXPECT_EQ(survivors, 1);
  release_demands(plan, {DemandPair{1, 4}}, /*repair=*/false);
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_EQ(plan.pairs[0].pair, (DemandPair{0, 5}));
}

TEST(Release, OneCallReleasesBothCopiesWhenAskedTwice) {
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 4;
  plan.pairs = {{DemandPair{1, 4}, 0, 0}, {DemandPair{1, 4}, 0, 1}};
  ReleaseStats stats =
      release_demands(plan, {DemandPair{1, 4}, DemandPair{1, 4}});
  EXPECT_EQ(stats.released, 2);
  EXPECT_TRUE(plan.pairs.empty());
}

TEST(Release, ErrorsLeaveThePlanUntouched) {
  GroomingPlan plan = base_plan(10, 0.5, 4, 2);
  const std::string before = serialize_plan(plan);
  // Not in the plan at all.
  EXPECT_THROW(release_demands(plan, {DemandPair{0, 1}, DemandPair{0, 1},
                                      DemandPair{0, 1}, DemandPair{0, 1},
                                      DemandPair{0, 1}}),
               CheckError);
  // Outside the ring.
  EXPECT_THROW(release_demands(plan, {DemandPair{0, 10}}), CheckError);
  EXPECT_THROW(release_demands(plan, {DemandPair{3, 3}}), CheckError);
  EXPECT_EQ(serialize_plan(plan), before);
}

TEST(Release, CompactionDropsEmptiedWavelengthsStably) {
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 2;
  plan.pairs = {{DemandPair{0, 1}, 0, 0}, {DemandPair{2, 3}, 1, 0},
                {DemandPair{4, 5}, 1, 1}, {DemandPair{6, 7}, 2, 0}};
  ReleaseStats stats =
      release_demands(plan, {DemandPair{2, 3}, DemandPair{4, 5}},
                      /*repair=*/false);
  EXPECT_EQ(stats.freed_wavelengths, 1);
  ASSERT_EQ(plan.pairs.size(), 2u);
  // Stable renumbering: wavelength 0 stays 0, old wavelength 2 becomes 1.
  EXPECT_EQ(plan.pairs[0].pair, (DemandPair{0, 1}));
  EXPECT_EQ(plan.pairs[0].wavelength, 0);
  EXPECT_EQ(plan.pairs[1].pair, (DemandPair{6, 7}));
  EXPECT_EQ(plan.pairs[1].wavelength, 1);
  EXPECT_EQ(plan.wavelength_count(), 2);
}

TEST(Release, RepairConsolidatesAStraggler) {
  // Wavelength 1 is left with one circuit whose endpoints both already
  // terminate on wavelength 0 (which has slack): repair must move it and
  // free the wavelength.
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 4;
  plan.pairs = {{DemandPair{0, 1}, 0, 0},
                {DemandPair{1, 2}, 0, 1},
                {DemandPair{0, 2}, 1, 0},
                {DemandPair{3, 4}, 1, 1}};
  ReleaseStats stats = release_demands(plan, {DemandPair{3, 4}});
  EXPECT_EQ(stats.released, 1);
  EXPECT_EQ(stats.repair_moves, 1);
  EXPECT_EQ(plan.wavelength_count(), 1);
  EXPECT_EQ(plan_sadm_count(plan), 3);  // {0,1,2} on one wavelength
  expect_valid(plan);
}

TEST(Release, RepairOffIsPureRemoval) {
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 4;
  plan.pairs = {{DemandPair{0, 1}, 0, 0},
                {DemandPair{1, 2}, 0, 1},
                {DemandPair{0, 2}, 1, 0},
                {DemandPair{3, 4}, 1, 1}};
  ReleaseStats stats =
      release_demands(plan, {DemandPair{3, 4}}, /*repair=*/false);
  EXPECT_EQ(stats.repair_moves, 0);
  EXPECT_EQ(plan.wavelength_count(), 2);  // straggler stays put
  EXPECT_EQ(plan_sadm_count(plan), 5);
}

TEST(Release, RepairNeverWorseThanNaiveRemoval) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GroomingPlan repaired = base_plan(14, 0.5, 4, seed);
    GroomingPlan naive = repaired;
    Rng rng(seed * 101);
    std::vector<DemandPair> remove;
    for (const GroomedPair& gp : repaired.pairs) {
      if (rng.below(3) == 0) remove.push_back(gp.pair);
    }
    if (remove.empty()) remove.push_back(repaired.pairs[0].pair);

    release_demands(repaired, remove, /*repair=*/true);
    release_demands(naive, remove, /*repair=*/false);

    EXPECT_LE(plan_sadm_count(repaired), plan_sadm_count(naive))
        << "seed " << seed;
    EXPECT_LE(repaired.wavelength_count(), naive.wavelength_count())
        << "seed " << seed;
    EXPECT_EQ(pair_multiset(repaired), pair_multiset(naive));
    expect_valid(repaired);
    expect_valid(naive);
  }
}

TEST(Release, FragmentBoundSurvivesRandomChurn) {
  // Property-style: random interleaved add/remove sequences keep the plan
  // within the Prop-2 fragment bound at every step.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    GroomingPlan plan;
    plan.ring_size = 12;
    plan.grooming_factor = 4;
    std::vector<DemandPair> live;
    for (int step = 0; step < 200; ++step) {
      const bool add = live.empty() || rng.below(5) < 3;
      if (add) {
        auto a = static_cast<NodeId>(rng.below(12));
        auto b = static_cast<NodeId>(rng.below(11));
        if (b >= a) ++b;
        DemandPair pair{std::min(a, b), std::max(a, b)};
        extend_plan_incremental(plan, {pair});
        live.push_back(pair);
      } else {
        const std::size_t victim = rng.below(live.size());
        release_demands(plan, {live[victim]});
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      ASSERT_TRUE(plan_within_prop2_bound(plan))
          << "seed " << seed << " step " << step << ": sadms="
          << plan_sadm_count(plan) << " fragments="
          << plan_fragment_count(plan);
      ASSERT_EQ(plan.pairs.size(), live.size());
    }
    expect_valid(plan);
  }
}

TEST(Release, RepairedResidualParityWithFullRecompute) {
  // The satellite claim: remove + local repair stays within the Prop-2
  // cost envelope of grooming the residual demand set from scratch.  The
  // repaired plan cannot always match the recompute SADM-for-SADM (repair
  // only moves circuits off the touched wavelengths), so the pinned
  // property is the paper-level one — the repaired cost respects the same
  // prop2_cost_bound certificate the recompute's cover earns — plus
  // byte-level residual parity.  Empirically the gap on these seeds is
  // also checked to stay small (within 25% + 2 SADMs).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    DemandSet demands = random_traffic(14, 0.5, rng);
    Graph traffic = demands.traffic_graph();
    EdgePartition part = run_algorithm(AlgorithmId::kSpanTEuler, traffic, 4);
    GroomingPlan plan = plan_from_partition(demands, traffic, part);

    Rng churn(seed * 31);
    std::vector<DemandPair> remove;
    DemandSet residual(14);
    for (const GroomedPair& gp : plan.pairs) {
      if (churn.below(2) == 0) {
        remove.push_back(gp.pair);
      } else {
        residual.add_pair(gp.pair.a, gp.pair.b);
      }
    }
    if (remove.empty() || residual.size() == 0) continue;

    release_demands(plan, remove, /*repair=*/true);
    EXPECT_EQ(pair_multiset(plan),
              std::multiset<DemandPair>(residual.pairs().begin(),
                                        residual.pairs().end()));

    Graph residual_traffic = residual.traffic_graph();
    EdgePartition fresh_part =
        run_algorithm(AlgorithmId::kSpanTEuler, residual_traffic, 4);
    GroomingPlan fresh =
        plan_from_partition(residual, residual_traffic, fresh_part);

    EXPECT_TRUE(plan_within_prop2_bound(plan)) << "seed " << seed;
    const long long repaired_sadms = plan_sadm_count(plan);
    const long long fresh_sadms = plan_sadm_count(fresh);
    EXPECT_LE(repaired_sadms, (fresh_sadms * 5) / 4 + 2)
        << "seed " << seed << ": repair drifted far from recompute ("
        << repaired_sadms << " vs " << fresh_sadms << ")";
    expect_valid(plan);
  }
}

TEST(Release, DeterministicAcrossRepeats) {
  GroomingPlan first = base_plan(14, 0.5, 4, 7);
  GroomingPlan second = first;
  const std::vector<DemandPair> remove = {
      first.pairs[1].pair, first.pairs[4].pair, first.pairs[9].pair};
  release_demands(first, remove);
  release_demands(second, remove);
  EXPECT_EQ(serialize_plan(first), serialize_plan(second));
}

TEST(Release, ReleaseEverythingEmptiesThePlan) {
  GroomingPlan plan = base_plan(10, 0.5, 4, 3);
  std::vector<DemandPair> all;
  for (const GroomedPair& gp : plan.pairs) all.push_back(gp.pair);
  const int waves = plan.wavelength_count();
  const long long sadms = plan_sadm_count(plan);
  ReleaseStats stats = release_demands(plan, all);
  EXPECT_EQ(stats.released, static_cast<int>(all.size()));
  EXPECT_EQ(stats.freed_wavelengths, waves);
  EXPECT_EQ(stats.sadms_removed, sadms);
  EXPECT_TRUE(plan.pairs.empty());
  EXPECT_EQ(plan.wavelength_count(), 0);
  EXPECT_TRUE(plan_within_prop2_bound(plan));
  EXPECT_EQ(plan_fragment_count(plan), 0);
}

TEST(Fragments, CountsComponentsPerWavelength) {
  GroomingPlan plan;
  plan.ring_size = 10;
  plan.grooming_factor = 8;
  // Wavelength 0: a path {0,1},{1,2} (one fragment) plus isolated {5,6}
  // (second fragment).  Wavelength 1: one edge (third fragment).
  plan.pairs = {{DemandPair{0, 1}, 0, 0},
                {DemandPair{1, 2}, 0, 1},
                {DemandPair{5, 6}, 0, 2},
                {DemandPair{3, 4}, 1, 0}};
  EXPECT_EQ(plan_fragment_count(plan), 3);
  // m=4 circuits, 7 distinct (node, wavelength) sites.
  EXPECT_EQ(plan_sadm_count(plan), 7);
  EXPECT_TRUE(plan_within_prop2_bound(plan));
}

}  // namespace
}  // namespace tgroom
