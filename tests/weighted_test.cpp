#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "graph/properties.hpp"
#include "grooming/weighted.hpp"
#include "sonet/protection.hpp"
#include "sonet/simulator.hpp"

namespace tgroom {
namespace {

TEST(WeightedDemands, AddAndMerge) {
  WeightedDemandSet set(8);
  set.add(0, 3, 2);
  set.add(3, 0, 1);  // merges after normalization
  set.add(1, 2, 4);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.demands()[0], (WeightedDemand{0, 3, 3}));
  EXPECT_EQ(set.total_units(), 7);
}

TEST(WeightedDemands, RejectsInvalid) {
  WeightedDemandSet set(4);
  EXPECT_THROW(set.add(0, 0, 1), CheckError);
  EXPECT_THROW(set.add(0, 9, 1), CheckError);
  EXPECT_THROW(set.add(0, 1, 0), CheckError);
  EXPECT_THROW(set.add(0, 1, -2), CheckError);
}

TEST(WeightedDemands, MultigraphExpansion) {
  WeightedDemandSet set(5);
  set.add(0, 1, 3);
  set.add(2, 4, 2);
  Graph g = set.traffic_multigraph();
  EXPECT_EQ(g.edge_count(), 5);
  EXPECT_FALSE(is_simple(g));  // parallel edges by construction
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(set.demand_of_edge(0), 0u);
  EXPECT_EQ(set.demand_of_edge(2), 0u);
  EXPECT_EQ(set.demand_of_edge(3), 1u);
  EXPECT_EQ(set.demand_of_edge(4), 1u);
}

TEST(WeightedDemands, SerializeParseRoundTrip) {
  WeightedDemandSet set(6);
  set.add(0, 5, 7);
  set.add(2, 3, 1);
  WeightedDemandSet back = WeightedDemandSet::parse(set.serialize());
  EXPECT_EQ(back.ring_size(), 6);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.demands()[0], set.demands()[0]);
  EXPECT_EQ(back.demands()[1], set.demands()[1]);
}

class WeightedGroomP : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(WeightedGroomP, EndToEndOnMultigraph) {
  WeightedDemandSet set(10);
  set.add(0, 5, 6);   // a fat demand that must split across wavelengths
  set.add(1, 2, 2);
  set.add(3, 8, 3);
  set.add(2, 7, 1);
  Graph multigraph = set.traffic_multigraph();
  const int k = 4;

  EdgePartition p = run_algorithm(GetParam(), multigraph, k);
  auto v = validate_partition(multigraph, p);
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_TRUE(uses_min_wavelengths(multigraph, p));

  GroomingPlan plan = plan_from_weighted_partition(set, multigraph, p);
  EXPECT_EQ(plan.pairs.size(), static_cast<std::size_t>(set.total_units()));
  UpsrRing ring(10);
  SimulationResult sim = simulate_plan(ring, plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
  EXPECT_EQ(sim.sadm_count, sadm_cost(multigraph, p));
  EXPECT_TRUE(
      survivability_report(ring, plan).survives_all_single_failures);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, WeightedGroomP,
                         ::testing::Values(AlgorithmId::kGoldschmidt,
                                           AlgorithmId::kBrauner,
                                           AlgorithmId::kSpanTEuler,
                                           AlgorithmId::kWangGuIcc06,
                                           AlgorithmId::kCliquePack));

TEST(WeightedGroom, FatDemandMustSplit) {
  // 6 units between one pair with k = 4: at least two wavelengths.
  WeightedDemandSet set(4);
  set.add(0, 2, 6);
  Graph g = set.traffic_multigraph();
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, g, 4);
  auto spread = demand_wavelength_spread(set, g, p);
  ASSERT_EQ(spread.size(), 1u);
  EXPECT_EQ(spread[0], 2);
  // Cost: {0,2} on both wavelengths -> 4 SADMs total.
  EXPECT_EQ(sadm_cost(g, p), 4);
}

TEST(WeightedGroom, SpreadCountsDistinctWavelengths) {
  WeightedDemandSet set(6);
  set.add(0, 1, 2);
  set.add(2, 3, 2);
  Graph g = set.traffic_multigraph();
  EdgePartition p;
  p.k = 2;
  p.parts = {{0, 2}, {1, 3}};  // each demand split across both wavelengths
  auto spread = demand_wavelength_spread(set, g, p);
  EXPECT_EQ(spread, (std::vector<int>{2, 2}));
}

TEST(WeightedGroom, UnitWeightsMatchUnitaryPath) {
  // All weights 1: the weighted pipeline must agree with the unitary one.
  WeightedDemandSet set(8);
  set.add(0, 1, 1);
  set.add(2, 5, 1);
  set.add(3, 7, 1);
  Graph g = set.traffic_multigraph();
  EXPECT_TRUE(is_simple(g));
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, g, 2);
  GroomingPlan plan = plan_from_weighted_partition(set, g, p);
  EXPECT_EQ(plan_sadm_count(plan), sadm_cost(g, p));
}

TEST(WeightedGroom, PlanRejectsMismatchedExpansion) {
  WeightedDemandSet set(4);
  set.add(0, 1, 2);
  Graph wrong(4);
  wrong.add_edge(0, 1);
  EdgePartition p;
  p.k = 2;
  p.parts = {{0}};
  EXPECT_THROW(plan_from_weighted_partition(set, wrong, p), CheckError);
}

}  // namespace
}  // namespace tgroom
