#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "algo/matching.hpp"
#include "algorithms/regular_euler.hpp"
#include "gen/families.hpp"
#include "gen/regular_graph.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"

namespace tgroom {
namespace {

void expect_valid_min_wavelength(const Graph& g, const EdgePartition& p,
                                 int k) {
  EXPECT_EQ(p.k, k);
  auto v = validate_partition(g, p);
  EXPECT_TRUE(v.ok) << v.reason;
  EXPECT_TRUE(uses_min_wavelengths(g, p));
}

TEST(RegularEuler, RejectsIrregularGraph) {
  Graph g = star_graph(4);
  EXPECT_THROW(regular_euler(g, 3), CheckError);
}

TEST(RegularEuler, EmptyAndZeroRegular) {
  Graph g(5);  // 0-regular
  EdgePartition p = regular_euler(g, 3);
  EXPECT_TRUE(p.parts.empty());
}

TEST(RegularEuler, OneRegularIsOptimal) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EdgePartition p = regular_euler(g, 2);
  expect_valid_min_wavelength(g, p, 2);
  EXPECT_EQ(sadm_cost(g, p), 6);  // 2 per demand; unavoidable
}

TEST(RegularEuler, EvenRegularConnectedIsSingleTour) {
  Rng rng(1);
  Graph g = random_regular(20, 4, rng);
  RegularEulerTrace trace;
  EdgePartition p = regular_euler(g, 5, {}, &trace);
  expect_valid_min_wavelength(g, p, 5);
  EXPECT_TRUE(trace.matching.empty());
  if (is_connected(g)) {
    EXPECT_EQ(trace.cover.size(), 1u);
    // Theorem 10 even case: cost <= m(1 + 1/k) with no cover slack.
    EXPECT_LE(sadm_cost(g, p),
              prop2_cost_bound(g.real_edge_count(), 5, 1));
  }
}

TEST(RegularEuler, CycleExactCost) {
  Graph g = cycle_graph(12);  // 2-regular
  EdgePartition p = regular_euler(g, 6);
  expect_valid_min_wavelength(g, p, 6);
  EXPECT_EQ(sadm_cost(g, p), 12 + 2);
}

TEST(RegularEuler, OddRegularTraceInvariants) {
  Rng rng(2);
  Graph g = random_regular(36, 7, rng);
  RegularEulerTrace trace;
  EdgePartition p = regular_euler(g, 8, {}, &trace);
  expect_valid_min_wavelength(g, p, 8);
  EXPECT_EQ(trace.r, 7);
  EXPECT_TRUE(is_matching(g, trace.matching));
  // Blossom matching meets Lemma 8.
  EXPECT_GE(static_cast<long long>(trace.matching.size()),
            lemma8_matching_lower_bound(36, 7));
  EXPECT_TRUE(validate_cover(g, trace.cover));
  EXPECT_TRUE(cover_spans_all_edges(g, trace.cover));
  // Lemma 9: cover size <= 3n/(r+1).
  EXPECT_LE(static_cast<long long>(trace.cover.size()),
            lemma9_cover_bound(36, 7));
}

TEST(RegularEuler, PetersenGraph) {
  Graph g = petersen_graph();  // 3-regular, perfect matching exists
  RegularEulerTrace trace;
  EdgePartition p = regular_euler(g, 4, {}, &trace);
  expect_valid_min_wavelength(g, p, 4);
  EXPECT_EQ(trace.matching.size(), 5u);
  // G-M is 2-regular: every component is even (all saturated).
  EXPECT_EQ(trace.odd_components, 0);
}

TEST(RegularEuler, CompleteGraphOddDegree) {
  Graph g = complete_graph(8);  // 7-regular
  RegularEulerTrace trace;
  EdgePartition p = regular_euler(g, 4, {}, &trace);
  expect_valid_min_wavelength(g, p, 4);
  EXPECT_LE(static_cast<long long>(trace.cover.size()),
            lemma9_cover_bound(8, 7));
}

class RegularEulerGridP
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RegularEulerGridP, Theorem10BoundsHold) {
  auto [r, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Graph g = random_regular(36, static_cast<NodeId>(r), rng);
  RegularEulerTrace trace;
  EdgePartition p = regular_euler(g, k, {}, &trace);
  auto v = validate_partition(g, p);
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_TRUE(uses_min_wavelengths(g, p));

  long long cost = sadm_cost(g, p);
  int components =
      trace.r % 2 == 0 ? static_cast<int>(trace.cover.size()) : 0;
  EXPECT_LE(cost, regular_euler_cost_bound(36, static_cast<NodeId>(r),
                                           g.real_edge_count(), k,
                                           components))
      << "r=" << r << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, RegularEulerGridP,
    ::testing::Combine(::testing::Values(3, 7, 8, 15, 16, 35),
                       ::testing::Values(3, 4, 16, 48),
                       ::testing::Values(1, 2)));

class RegularEulerMatchingPolicyP
    : public ::testing::TestWithParam<MatchingPolicy> {};

TEST_P(RegularEulerMatchingPolicyP, AllMatchingPoliciesValid) {
  Rng rng(7);
  Graph g = random_regular(36, 15, rng);
  GroomingOptions options;
  options.matching_policy = GetParam();
  options.seed = 11;
  EdgePartition p = regular_euler(g, 8, options);
  expect_valid_min_wavelength(g, p, 8);
}

INSTANTIATE_TEST_SUITE_P(Policies, RegularEulerMatchingPolicyP,
                         ::testing::Values(MatchingPolicy::kGreedy,
                                           MatchingPolicy::kBlossom,
                                           MatchingPolicy::kColorClass));

TEST(RegularEuler, DisconnectedEvenRegular) {
  // Two disjoint 4-cycles: 2-regular, two components.
  Graph g(8);
  for (NodeId base : {0, 4}) {
    for (NodeId i = 0; i < 4; ++i) {
      g.add_edge(static_cast<NodeId>(base + i),
                 static_cast<NodeId>(base + (i + 1) % 4));
    }
  }
  RegularEulerTrace trace;
  EdgePartition p = regular_euler(g, 3, {}, &trace);
  expect_valid_min_wavelength(g, p, 3);
  EXPECT_EQ(trace.even_components, 2);
}

TEST(RegularEuler, DisconnectedOddRegularWithOddComponents) {
  // Two disjoint K4s: 3-regular; with a maximum matching the components
  // stay fully saturated, so force odd components via a *greedy* matching
  // that may differ — instead verify correctness only.
  Graph g(8);
  for (NodeId base : {0, 4}) {
    for (NodeId i = 0; i < 4; ++i) {
      for (NodeId j = static_cast<NodeId>(i + 1); j < 4; ++j) {
        g.add_edge(static_cast<NodeId>(base + i),
                   static_cast<NodeId>(base + j));
      }
    }
  }
  EdgePartition p = regular_euler(g, 4);
  expect_valid_min_wavelength(g, p, 4);
}

TEST(RegularEuler, WorksOnRegularMultigraph) {
  // A doubled 4-cycle: 4-regular multigraph (weighted traffic shape).
  Graph g(4);
  for (int rep = 0; rep < 2; ++rep) {
    for (NodeId v = 0; v < 4; ++v) {
      g.add_edge(v, static_cast<NodeId>((v + 1) % 4));
    }
  }
  EdgePartition p = regular_euler(g, 3);
  expect_valid_min_wavelength(g, p, 3);
}

TEST(Lemma9Bound, Formula) {
  EXPECT_EQ(lemma9_cover_bound(36, 7), 14);   // ceil(108/8)
  EXPECT_EQ(lemma9_cover_bound(36, 15), 7);   // ceil(108/16)
  EXPECT_THROW(lemma9_cover_bound(36, 8), CheckError);  // even r
}

}  // namespace
}  // namespace tgroom
