// Validator fuzzing: take valid partitions/plans and apply random
// corruptions; every corruption must be rejected by the corresponding
// checker.  Guards against validators silently rubber-stamping.
#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "gen/random_graph.hpp"
#include "grooming/plan.hpp"
#include "sonet/simulator.hpp"

namespace tgroom {
namespace {

struct Mutation {
  const char* name;
  // Returns false if the mutation was not applicable to this partition.
  bool (*apply)(Rng&, const Graph&, EdgePartition&);
};

bool drop_edge(Rng& rng, const Graph&, EdgePartition& p) {
  if (p.parts.empty()) return false;
  auto& part = p.parts[static_cast<std::size_t>(rng.below(p.parts.size()))];
  if (part.size() < 2) return false;  // dropping may leave an empty part;
                                      // keep the mutation purely "missing
                                      // edge" shaped
  part.pop_back();
  return true;
}

bool duplicate_edge(Rng& rng, const Graph&, EdgePartition& p) {
  if (p.parts.size() < 2) return false;
  std::size_t from = static_cast<std::size_t>(rng.below(p.parts.size()));
  std::size_t to = static_cast<std::size_t>(rng.below(p.parts.size()));
  if (from == to) to = (to + 1) % p.parts.size();
  if (p.parts[to].size() >= static_cast<std::size_t>(p.k)) return false;
  p.parts[to].push_back(p.parts[from].front());
  return true;
}

bool oversize_part(Rng& rng, const Graph&, EdgePartition& p) {
  if (p.parts.size() < 2) return false;
  // Move edges from one part into another until it exceeds k.
  std::size_t to = static_cast<std::size_t>(rng.below(p.parts.size()));
  std::size_t from = (to + 1) % p.parts.size();
  while (p.parts[to].size() <= static_cast<std::size_t>(p.k)) {
    if (p.parts[from].empty()) return false;
    p.parts[to].push_back(p.parts[from].back());
    p.parts[from].pop_back();
  }
  if (p.parts[from].empty()) p.parts.erase(p.parts.begin() + static_cast<long>(from));
  return true;
}

bool bogus_edge_id(Rng& rng, const Graph& g, EdgePartition& p) {
  if (p.parts.empty()) return false;
  auto& part = p.parts[static_cast<std::size_t>(rng.below(p.parts.size()))];
  part.back() = g.edge_count() + 5;
  return true;
}

bool empty_part(Rng&, const Graph&, EdgePartition& p) {
  p.parts.emplace_back();
  return true;
}

class FuzzPartitionP : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPartitionP, CorruptionsAreAlwaysRejected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  Graph g = random_gnm(14, 24, rng);
  EdgePartition valid = run_algorithm(AlgorithmId::kSpanTEuler, g, 4);
  ASSERT_TRUE(validate_partition(g, valid).ok);

  const Mutation mutations[] = {
      {"drop_edge", drop_edge},
      {"duplicate_edge", duplicate_edge},
      {"oversize_part", oversize_part},
      {"bogus_edge_id", bogus_edge_id},
      {"empty_part", empty_part},
  };
  for (const Mutation& mutation : mutations) {
    EdgePartition corrupted = valid;
    if (!mutation.apply(rng, g, corrupted)) continue;
    EXPECT_FALSE(validate_partition(g, corrupted).ok) << mutation.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPartitionP, ::testing::Range(0, 10));

class FuzzPlanP : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPlanP, SimulatorRejectsCorruptedPlans) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  Graph g = random_gnm(12, 18, rng);
  DemandSet demands = DemandSet::from_traffic_graph(g);
  EdgePartition p = run_algorithm(AlgorithmId::kBrauner, g, 3);
  GroomingPlan plan = plan_from_partition(demands, g, p);
  UpsrRing ring(12);
  ASSERT_TRUE(simulate_plan(ring, plan).ok);
  ASSERT_FALSE(plan.pairs.empty());

  auto pick = [&]() -> GroomedPair& {
    return plan.pairs[static_cast<std::size_t>(rng.below(plan.pairs.size()))];
  };
  {
    GroomingPlan bad = plan;
    GroomedPair& victim =
        bad.pairs[static_cast<std::size_t>(rng.below(bad.pairs.size()))];
    victim.timeslot = bad.grooming_factor;  // out of range
    EXPECT_FALSE(simulate_plan(ring, bad).ok);
  }
  {
    GroomingPlan bad = plan;
    GroomedPair& victim =
        bad.pairs[static_cast<std::size_t>(rng.below(bad.pairs.size()))];
    victim.pair.b = victim.pair.a;  // degenerate demand
    EXPECT_FALSE(simulate_plan(ring, bad).ok);
  }
  {
    GroomingPlan bad = plan;
    // Duplicate an assignment: same wavelength+timeslot twice.
    bad.pairs.push_back(pick());
    EXPECT_FALSE(simulate_plan(ring, bad).ok);
  }
  {
    GroomingPlan bad = plan;
    bad.pairs[0].wavelength = -1;
    EXPECT_FALSE(simulate_plan(ring, bad).ok);
  }
  {
    GroomingPlan bad = plan;
    bad.ring_size = 13;  // mismatched ring
    EXPECT_FALSE(simulate_plan(ring, bad).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPlanP, ::testing::Range(0, 10));

}  // namespace
}  // namespace tgroom
