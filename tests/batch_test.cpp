// BatchGroomer: worker-count-independent results, per-cell seeding, and
// the sweep engine built on top of it.
#include <gtest/gtest.h>

#include <set>

#include "bench_support/sweep.hpp"
#include "gen/random_graph.hpp"
#include "grooming/batch.hpp"

namespace tgroom {
namespace {

std::vector<Graph> make_instances(std::size_t count) {
  std::vector<Graph> graphs;
  graphs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(BatchGroomer::cell_seed(2006, i));
    // Vary the size so chunks see heterogeneous work.
    auto n = static_cast<NodeId>(12 + (i % 5) * 8);
    graphs.push_back(
        random_gnm(n, 3LL * n, rng));
  }
  return graphs;
}

std::vector<BatchCell> make_cells(const std::vector<Graph>& graphs) {
  std::vector<BatchCell> cells;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    for (int k : {4, 16}) {
      BatchCell cell;
      cell.graph = &graphs[i];
      cell.k = k;
      cell.options.seed = BatchGroomer::cell_seed(777, cells.size());
      cells.push_back(cell);
    }
  }
  return cells;
}

TEST(BatchGroomer, BitIdenticalAcrossWorkerCounts) {
  std::vector<Graph> graphs = make_instances(10);
  std::vector<BatchCell> cells = make_cells(graphs);

  std::vector<std::vector<BatchCellResult>> runs;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1},
                              std::size_t{4}}) {
    BatchGroomer groomer(BatchConfig{workers, /*validate=*/true,
                                     /*keep_partitions=*/true});
    runs.push_back(groomer.run(cells));
  }

  ASSERT_EQ(runs[0].size(), cells.size());
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].sadms, runs[0][i].sadms) << "cell " << i;
      EXPECT_EQ(runs[r][i].wavelengths, runs[0][i].wavelengths);
      EXPECT_EQ(runs[r][i].lower_bound, runs[0][i].lower_bound);
      EXPECT_EQ(runs[r][i].partition.parts, runs[0][i].partition.parts);
    }
  }
}

TEST(BatchGroomer, KeepPartitionsFalseDropsPartitionsOnly) {
  std::vector<Graph> graphs = make_instances(4);
  std::vector<BatchCell> cells = make_cells(graphs);
  BatchGroomer keep(BatchConfig{0, true, true});
  BatchGroomer drop(BatchConfig{0, true, false});
  std::vector<BatchCellResult> kept = keep.run(cells);
  std::vector<BatchCellResult> dropped = drop.run(cells);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(dropped[i].sadms, kept[i].sadms);
    EXPECT_EQ(dropped[i].wavelengths, kept[i].wavelengths);
    EXPECT_TRUE(dropped[i].partition.parts.empty());
    EXPECT_FALSE(kept[i].partition.parts.empty());
  }
}

TEST(BatchGroomer, CellSeedIsStableAndDecorrelated) {
  // Pinned values: changing the seed derivation silently changes every
  // downstream experiment, so it must be deliberate.
  EXPECT_EQ(BatchGroomer::cell_seed(2006, 0),
            BatchGroomer::cell_seed(2006, 0));
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    seen.insert(BatchGroomer::cell_seed(2006, i));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in a realistic range
  EXPECT_NE(BatchGroomer::cell_seed(2006, 0),
            BatchGroomer::cell_seed(2007, 0));
}

TEST(BatchGroomer, EmptyBatch) {
  BatchGroomer groomer(BatchConfig{4, true, true});
  EXPECT_TRUE(groomer.run({}).empty());
}

TEST(Sweep, BitIdenticalAcrossWorkerCounts) {
  WorkloadSpec workload = WorkloadSpec::dense(20, 0.5);
  std::vector<AlgorithmId> algorithms = {AlgorithmId::kSpanTEuler,
                                         AlgorithmId::kGoldschmidt};
  SweepConfig base;
  base.grooming_factors = {4, 12};
  base.seeds = 6;

  std::vector<SweepResult> results;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1},
                              std::size_t{4}}) {
    SweepConfig config = base;
    config.workers = workers;
    results.push_back(run_sweep(workload, algorithms, config));
  }

  for (std::size_t r = 1; r < results.size(); ++r) {
    EXPECT_EQ(results[r].mean_edges, results[0].mean_edges);
    ASSERT_EQ(results[r].series.size(), results[0].series.size());
    for (std::size_t a = 0; a < results[0].series.size(); ++a) {
      for (std::size_t ki = 0; ki < results[0].series[a].cells.size();
           ++ki) {
        const SweepCell& expected = results[0].series[a].cells[ki];
        const SweepCell& actual = results[r].series[a].cells[ki];
        // Bit-identical, not approximately equal: aggregation order is
        // fixed regardless of worker count.
        EXPECT_EQ(actual.mean_sadms, expected.mean_sadms);
        EXPECT_EQ(actual.min_sadms, expected.min_sadms);
        EXPECT_EQ(actual.max_sadms, expected.max_sadms);
        EXPECT_EQ(actual.mean_wavelengths, expected.mean_wavelengths);
        EXPECT_EQ(actual.mean_lower_bound, expected.mean_lower_bound);
      }
    }
  }
}

}  // namespace
}  // namespace tgroom
