#include <gtest/gtest.h>

#include "gen/families.hpp"
#include "partition/edge_partition.hpp"

namespace tgroom {
namespace {

TEST(EdgePartition, TotalsAndWavelengths) {
  EdgePartition p;
  p.k = 3;
  p.parts = {{0, 1, 2}, {3, 4}};
  EXPECT_EQ(p.total_edges(), 5);
  EXPECT_EQ(p.wavelength_count(), 2);
}

TEST(SadmCost, TriangleVersusPath) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // triangle
  g.add_edge(3, 4);  // stray edge
  EdgePartition triangle_first;
  triangle_first.k = 3;
  triangle_first.parts = {{0, 1, 2}, {3}};
  EXPECT_EQ(sadm_cost(g, triangle_first), 3 + 2);

  EdgePartition mixed;
  mixed.k = 3;
  mixed.parts = {{0, 1, 3}, {2}};
  EXPECT_EQ(sadm_cost(g, mixed), 5 + 2);
}

TEST(Validate, AcceptsProperPartition) {
  Graph g = cycle_graph(4);
  EdgePartition p;
  p.k = 2;
  p.parts = {{0, 1}, {2, 3}};
  EXPECT_TRUE(validate_partition(g, p).ok);
}

TEST(Validate, RejectsMissingEdge) {
  Graph g = cycle_graph(4);
  EdgePartition p;
  p.k = 4;
  p.parts = {{0, 1, 2}};
  auto v = validate_partition(g, p);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("appears 0 times"), std::string::npos);
}

TEST(Validate, RejectsDuplicateEdge) {
  Graph g = cycle_graph(4);
  EdgePartition p;
  p.k = 4;
  p.parts = {{0, 1}, {1, 2, 3}};
  EXPECT_FALSE(validate_partition(g, p).ok);
}

TEST(Validate, RejectsOversizedPart) {
  Graph g = cycle_graph(4);
  EdgePartition p;
  p.k = 2;
  p.parts = {{0, 1, 2}, {3}};
  EXPECT_FALSE(validate_partition(g, p).ok);
}

TEST(Validate, RejectsEmptyPartAndVirtualEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EdgeId v = g.add_edge(1, 2, /*is_virtual=*/true);
  EdgePartition with_empty;
  with_empty.k = 2;
  with_empty.parts = {{0}, {}};
  EXPECT_FALSE(validate_partition(g, with_empty).ok);

  EdgePartition with_virtual;
  with_virtual.k = 2;
  with_virtual.parts = {{0, v}};
  EXPECT_FALSE(validate_partition(g, with_virtual).ok);
}

TEST(Validate, RejectsBadK) {
  Graph g(2);
  EdgePartition p;
  p.k = 0;
  EXPECT_FALSE(validate_partition(g, p).ok);
}

TEST(MinWavelengths, CeilFormula) {
  EXPECT_EQ(min_wavelengths(10, 4), 3);
  EXPECT_EQ(min_wavelengths(12, 4), 3);
  EXPECT_EQ(min_wavelengths(0, 4), 0);
  EXPECT_EQ(min_wavelengths(1, 16), 1);
}

TEST(MinNodesForEdges, TriangularInverse) {
  EXPECT_EQ(min_nodes_for_edges(0), 0);
  EXPECT_EQ(min_nodes_for_edges(1), 2);
  EXPECT_EQ(min_nodes_for_edges(3), 3);   // triangle
  EXPECT_EQ(min_nodes_for_edges(4), 4);
  EXPECT_EQ(min_nodes_for_edges(6), 4);   // K4
  EXPECT_EQ(min_nodes_for_edges(7), 5);
  EXPECT_EQ(min_nodes_for_edges(16), 7);  // 6*7/2=21 >= 16, 5*6/2=15 < 16
}

TEST(LowerBound, CompleteGraphTightCases) {
  Graph k4 = complete_graph(4);
  // k=3: best is two triangles? K4 has 6 edges; parts of 3 edges each need
  // >= 3 nodes -> LB = 6; actual best for K4/k=3 is 3+... (triangle +
  // remaining star of 3 edges spans 4 nodes) = 7.
  EXPECT_EQ(partition_cost_lower_bound(k4, 3), 6);
  // k=6: one part, at least 4 nodes (and 4 active nodes).
  EXPECT_EQ(partition_cost_lower_bound(k4, 6), 4);
}

TEST(LowerBound, DegreeTermDominatesWhenSparse) {
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  // 6 degree-1 nodes each need one SADM; packing with k=3 only gives 3.
  EXPECT_EQ(degree_lower_bound(g, 3), 6);
  EXPECT_EQ(partition_cost_lower_bound(g, 3), 6);
}

TEST(LowerBound, DegreeTermOnStarIsTight) {
  Graph g = star_graph(9);  // hub degree 8
  // hub needs ceil(8/4) = 2 SADMs, leaves one each: 10 — and SpanT_Euler
  // achieves exactly 10 (see SpanTEuler.StarGetsOptimalCost).
  EXPECT_EQ(degree_lower_bound(g, 4), 10);
  EXPECT_EQ(partition_cost_lower_bound(g, 4), 10);
}

TEST(LowerBound, NeverExceedsOptimalOnKnownCases) {
  // K4 at k=3: OPT = 7 (triangle + co-star); LB must stay <= 7.
  EXPECT_LE(partition_cost_lower_bound(complete_graph(4), 3), 7);
}

}  // namespace
}  // namespace tgroom
