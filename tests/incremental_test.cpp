#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/incremental.hpp"
#include "sonet/simulator.hpp"

namespace tgroom {
namespace {

GroomingPlan base_plan(NodeId n, double dense, int k, std::uint64_t seed,
                       DemandSet* demands_out = nullptr) {
  Rng rng(seed);
  DemandSet demands = random_traffic(n, dense, rng);
  Graph traffic = demands.traffic_graph();
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, traffic, k);
  if (demands_out) *demands_out = demands;
  return plan_from_partition(demands, traffic, p);
}

TEST(Incremental, ExistingAssignmentsUntouched) {
  GroomingPlan plan = base_plan(12, 0.4, 4, 1);
  std::size_t before = plan.pairs.size();
  IncrementalResult r =
      add_demands_incremental(plan, {DemandPair{0, 6}, DemandPair{3, 9}});
  ASSERT_EQ(r.plan.pairs.size(), before + 2);
  for (std::size_t i = 0; i < before; ++i) {
    EXPECT_EQ(r.plan.pairs[i].pair, plan.pairs[i].pair);
    EXPECT_EQ(r.plan.pairs[i].wavelength, plan.pairs[i].wavelength);
    EXPECT_EQ(r.plan.pairs[i].timeslot, plan.pairs[i].timeslot);
  }
}

TEST(Incremental, ResultSimulatesCleanly) {
  GroomingPlan plan = base_plan(14, 0.5, 4, 2);
  std::vector<DemandPair> churn;
  for (NodeId v = 0; v < 7; ++v) {
    churn.push_back(DemandPair{v, static_cast<NodeId>(v + 7)});
  }
  IncrementalResult r = add_demands_incremental(plan, churn);
  UpsrRing ring(14);
  SimulationResult sim = simulate_plan(ring, r.plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
}

TEST(Incremental, PrefersWavelengthsWithExistingSadms) {
  // One wavelength terminating at {0, 3} with slack: adding {0, 3} again
  // is impossible (duplicate demands allowed here — a second circuit
  // between the same nodes), and adding {0, 5} should reuse node 0's SADM.
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 4;
  plan.pairs = {{DemandPair{0, 3}, 0, 0}};
  IncrementalResult r = add_demands_incremental(plan, {DemandPair{0, 5}});
  EXPECT_EQ(r.plan.pairs.back().wavelength, 0);
  EXPECT_EQ(r.new_sadms, 1);      // only node 5
  EXPECT_EQ(r.reused_sites, 1);   // node 0 already had one
  EXPECT_EQ(r.new_wavelengths, 0);
}

TEST(Incremental, OpensWavelengthWhenFull) {
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 1;
  plan.pairs = {{DemandPair{0, 1}, 0, 0}};
  IncrementalResult r = add_demands_incremental(plan, {DemandPair{0, 2}});
  EXPECT_EQ(r.new_wavelengths, 1);
  EXPECT_EQ(r.plan.pairs.back().wavelength, 1);
  EXPECT_EQ(r.new_sadms, 2);
}

TEST(Incremental, FillsSlotHolesInParsedPlans) {
  // Slots {0, 2} occupied: the next assignment must take slot 1, not 2.
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 3;
  plan.pairs = {{DemandPair{0, 4}, 0, 0}, {DemandPair{1, 5}, 0, 2}};
  IncrementalResult r = add_demands_incremental(plan, {DemandPair{2, 6}});
  EXPECT_EQ(r.plan.pairs.back().wavelength, 0);
  EXPECT_EQ(r.plan.pairs.back().timeslot, 1);
  UpsrRing ring(8);
  EXPECT_TRUE(simulate_plan(ring, r.plan).ok);
}

TEST(Incremental, PenaltyVersusFreshRegroom) {
  DemandSet demands(0);
  GroomingPlan plan = base_plan(16, 0.4, 4, 3, &demands);
  // Churn: 10 new pairs not already present.
  std::vector<DemandPair> churn;
  Rng rng(77);
  while (churn.size() < 10) {
    auto a = static_cast<NodeId>(rng.below(16));
    auto b = static_cast<NodeId>(rng.below(16));
    if (a == b || demands.contains(a, b)) continue;
    demands.add_pair(a, b);
    churn.push_back(DemandPair{std::min(a, b), std::max(a, b)});
  }
  IncrementalResult incremental = add_demands_incremental(plan, churn);

  Graph union_traffic = demands.traffic_graph();
  EdgePartition fresh_partition =
      run_algorithm(AlgorithmId::kSpanTEuler, union_traffic, 4);
  GroomingPlan fresh =
      plan_from_partition(demands, union_traffic, fresh_partition);

  long long penalty = incremental_penalty(incremental, fresh);
  // Incremental can never beat its own assignments being replanned with
  // full freedom by much; in practice it pays a non-negative penalty.
  EXPECT_GE(penalty, -2);
  UpsrRing ring(16);
  EXPECT_TRUE(simulate_plan(ring, incremental.plan).ok);
}

TEST(Incremental, RejectsBadDemand) {
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 2;
  EXPECT_THROW(add_demands_incremental(plan, {DemandPair{0, 6}}), CheckError);
  EXPECT_THROW(add_demands_incremental(plan, {DemandPair{2, 2}}), CheckError);
}

TEST(Incremental, NoNewDemandsIsIdentity) {
  GroomingPlan plan = base_plan(10, 0.4, 3, 5);
  IncrementalResult r = add_demands_incremental(plan, {});
  EXPECT_EQ(r.plan.pairs.size(), plan.pairs.size());
  EXPECT_EQ(r.new_sadms, 0);
  EXPECT_EQ(r.new_wavelengths, 0);
}

TEST(Incremental, ExtendInPlaceMatchesCopyingWrapper) {
  // The WAL replay path uses extend_plan_incremental directly; the
  // service's live path goes through add_demands_incremental.  Both must
  // produce the same plan or recovery diverges from the acked state.
  GroomingPlan in_place = base_plan(12, 0.4, 4, 9);
  const std::vector<DemandPair> add = {DemandPair{0, 6}, DemandPair{2, 9},
                                       DemandPair{1, 7}};
  const IncrementalResult copied = add_demands_incremental(in_place, add);
  const IncrementalStats stats = extend_plan_incremental(in_place, add);
  EXPECT_EQ(serialize_plan(in_place), serialize_plan(copied.plan));
  EXPECT_EQ(stats.new_sadms, copied.new_sadms);
  EXPECT_EQ(stats.new_wavelengths, copied.new_wavelengths);
  EXPECT_EQ(stats.reused_sites, copied.reused_sites);
}

TEST(Incremental, SequentialExtensionComposes) {
  // Replaying N provision records one-by-one must land on the same plan
  // as the live process that applied them one-by-one — and splitting a
  // batch anywhere cannot change the outcome relative to replay order.
  GroomingPlan one_by_one = base_plan(14, 0.5, 4, 10);
  GroomingPlan split = one_by_one;
  const std::vector<DemandPair> adds = {
      DemandPair{0, 7}, DemandPair{3, 11}, DemandPair{5, 9},
      DemandPair{1, 8}, DemandPair{2, 13}, DemandPair{4, 10}};
  for (const DemandPair& p : adds) {
    extend_plan_incremental(one_by_one, {p});
  }
  extend_plan_incremental(split,
                          {adds.begin(), adds.begin() + 2});
  extend_plan_incremental(split, {adds.begin() + 2, adds.end()});
  EXPECT_EQ(serialize_plan(one_by_one), serialize_plan(split));
}

}  // namespace
}  // namespace tgroom
