#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/incremental.hpp"
#include "sonet/simulator.hpp"

namespace tgroom {
namespace {

GroomingPlan base_plan(NodeId n, double dense, int k, std::uint64_t seed,
                       DemandSet* demands_out = nullptr) {
  Rng rng(seed);
  DemandSet demands = random_traffic(n, dense, rng);
  Graph traffic = demands.traffic_graph();
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, traffic, k);
  if (demands_out) *demands_out = demands;
  return plan_from_partition(demands, traffic, p);
}

TEST(Incremental, ExistingAssignmentsUntouched) {
  GroomingPlan plan = base_plan(12, 0.4, 4, 1);
  std::size_t before = plan.pairs.size();
  IncrementalResult r =
      add_demands_incremental(plan, {DemandPair{0, 6}, DemandPair{3, 9}});
  ASSERT_EQ(r.plan.pairs.size(), before + 2);
  for (std::size_t i = 0; i < before; ++i) {
    EXPECT_EQ(r.plan.pairs[i].pair, plan.pairs[i].pair);
    EXPECT_EQ(r.plan.pairs[i].wavelength, plan.pairs[i].wavelength);
    EXPECT_EQ(r.plan.pairs[i].timeslot, plan.pairs[i].timeslot);
  }
}

TEST(Incremental, ResultSimulatesCleanly) {
  GroomingPlan plan = base_plan(14, 0.5, 4, 2);
  std::vector<DemandPair> churn;
  for (NodeId v = 0; v < 7; ++v) {
    churn.push_back(DemandPair{v, static_cast<NodeId>(v + 7)});
  }
  IncrementalResult r = add_demands_incremental(plan, churn);
  UpsrRing ring(14);
  SimulationResult sim = simulate_plan(ring, r.plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
}

TEST(Incremental, PrefersWavelengthsWithExistingSadms) {
  // One wavelength terminating at {0, 3} with slack: adding {0, 3} again
  // is impossible (duplicate demands allowed here — a second circuit
  // between the same nodes), and adding {0, 5} should reuse node 0's SADM.
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 4;
  plan.pairs = {{DemandPair{0, 3}, 0, 0}};
  IncrementalResult r = add_demands_incremental(plan, {DemandPair{0, 5}});
  EXPECT_EQ(r.plan.pairs.back().wavelength, 0);
  EXPECT_EQ(r.new_sadms, 1);      // only node 5
  EXPECT_EQ(r.reused_sites, 1);   // node 0 already had one
  EXPECT_EQ(r.new_wavelengths, 0);
}

TEST(Incremental, OpensWavelengthWhenFull) {
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 1;
  plan.pairs = {{DemandPair{0, 1}, 0, 0}};
  IncrementalResult r = add_demands_incremental(plan, {DemandPair{0, 2}});
  EXPECT_EQ(r.new_wavelengths, 1);
  EXPECT_EQ(r.plan.pairs.back().wavelength, 1);
  EXPECT_EQ(r.new_sadms, 2);
}

TEST(Incremental, FillsSlotHolesInParsedPlans) {
  // Slots {0, 2} occupied: the next assignment must take slot 1, not 2.
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 3;
  plan.pairs = {{DemandPair{0, 4}, 0, 0}, {DemandPair{1, 5}, 0, 2}};
  IncrementalResult r = add_demands_incremental(plan, {DemandPair{2, 6}});
  EXPECT_EQ(r.plan.pairs.back().wavelength, 0);
  EXPECT_EQ(r.plan.pairs.back().timeslot, 1);
  UpsrRing ring(8);
  EXPECT_TRUE(simulate_plan(ring, r.plan).ok);
}

TEST(Incremental, PenaltyVersusFreshRegroom) {
  DemandSet demands(0);
  GroomingPlan plan = base_plan(16, 0.4, 4, 3, &demands);
  // Churn: 10 new pairs not already present.
  std::vector<DemandPair> churn;
  Rng rng(77);
  while (churn.size() < 10) {
    auto a = static_cast<NodeId>(rng.below(16));
    auto b = static_cast<NodeId>(rng.below(16));
    if (a == b || demands.contains(a, b)) continue;
    demands.add_pair(a, b);
    churn.push_back(DemandPair{std::min(a, b), std::max(a, b)});
  }
  IncrementalResult incremental = add_demands_incremental(plan, churn);

  Graph union_traffic = demands.traffic_graph();
  EdgePartition fresh_partition =
      run_algorithm(AlgorithmId::kSpanTEuler, union_traffic, 4);
  GroomingPlan fresh =
      plan_from_partition(demands, union_traffic, fresh_partition);

  long long penalty = incremental_penalty(incremental, fresh);
  // Incremental can never beat its own assignments being replanned with
  // full freedom by much; in practice it pays a non-negative penalty.
  EXPECT_GE(penalty, -2);
  UpsrRing ring(16);
  EXPECT_TRUE(simulate_plan(ring, incremental.plan).ok);
}

TEST(Incremental, RejectsBadDemand) {
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 2;
  EXPECT_THROW(add_demands_incremental(plan, {DemandPair{0, 6}}), CheckError);
  EXPECT_THROW(add_demands_incremental(plan, {DemandPair{2, 2}}), CheckError);
}

TEST(Incremental, NoNewDemandsIsIdentity) {
  GroomingPlan plan = base_plan(10, 0.4, 3, 5);
  IncrementalResult r = add_demands_incremental(plan, {});
  EXPECT_EQ(r.plan.pairs.size(), plan.pairs.size());
  EXPECT_EQ(r.new_sadms, 0);
  EXPECT_EQ(r.new_wavelengths, 0);
}

}  // namespace
}  // namespace tgroom
