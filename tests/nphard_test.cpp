#include <gtest/gtest.h>

#include "gen/families.hpp"
#include "graph/properties.hpp"
#include "nphard/ept.hpp"
#include "nphard/gadget.hpp"
#include "nphard/keprg.hpp"

namespace tgroom {
namespace {

TEST(Ept, TriangleChecker) {
  Graph g = complete_graph(4);
  EdgeId e01 = g.find_edge(0, 1);
  EdgeId e12 = g.find_edge(1, 2);
  EdgeId e02 = g.find_edge(0, 2);
  EdgeId e03 = g.find_edge(0, 3);
  EXPECT_TRUE(is_triangle(g, {e01, e12, e02}));
  EXPECT_FALSE(is_triangle(g, {e01, e12, e03}));   // a path, not a triangle
  EXPECT_FALSE(is_triangle(g, {e01, e01, e02}));   // repeated edge
}

TEST(Ept, QuickcheckCatchesParityFailures) {
  EXPECT_FALSE(ept_feasible_quickcheck(path_graph(3)));     // odd degrees
  EXPECT_FALSE(ept_feasible_quickcheck(cycle_graph(4)));    // m % 3 != 0
  EXPECT_TRUE(ept_feasible_quickcheck(triangle_forest(2)));
}

TEST(Ept, SolvesTriangleForest) {
  Graph g = triangle_forest(3);
  auto solution = solve_ept(g);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(is_triangle_partition(g, *solution));
  EXPECT_EQ(solution->triangles.size(), 3u);
}

TEST(Ept, K4HasNoTrianglePartition) {
  // K4: m=6 divisible by 3 but all degrees odd -> quickcheck fails.
  EXPECT_FALSE(solve_ept(complete_graph(4)).has_value());
}

TEST(Ept, OctahedronPartitionsIntoTriangles) {
  // K_{2,2,2} (octahedron): 4-regular, 12 edges, classic yes-instance.
  Graph g(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < 6; ++v) {
      if (v - u == 3) continue;  // antipodal non-edges 0-3, 1-4, 2-5
      g.add_edge(u, v);
    }
  }
  ASSERT_TRUE(regularity(g).has_value());
  EXPECT_EQ(*regularity(g), 4);
  auto solution = solve_ept(g);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(is_triangle_partition(g, *solution));
}

TEST(Ept, EvenDegreeYetUnsolvable) {
  // C6 has even degrees and... m=6 divisible by 3, but no triangles at all.
  EXPECT_FALSE(solve_ept(cycle_graph(6)).has_value());
}

TEST(Gadget, RejectsOddDegreeInput) {
  EXPECT_THROW(build_regular_ept_gadget(path_graph(2)), CheckError);
}

TEST(Gadget, ProducesSimpleRegularGraph) {
  // A yes-instance: two triangles sharing structure via disjointness.
  Graph g = triangle_forest(2);
  RegularEptGadget gadget = build_regular_ept_gadget(g);
  EXPECT_EQ(gadget.delta, 2);
  EXPECT_TRUE(is_simple(gadget.gstar));
  ASSERT_TRUE(regularity(gadget.gstar).has_value());
  EXPECT_EQ(*regularity(gadget.gstar), 2);
}

TEST(Gadget, HigherDegreeInstance) {
  // Octahedron: Δ = 4; the gadget must be 4-regular and simple, and must
  // exercise the corrected step-6 layers.
  Graph g(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < 6; ++v) {
      if (v - u == 3) continue;
      g.add_edge(u, v);
    }
  }
  RegularEptGadget gadget = build_regular_ept_gadget(g);
  EXPECT_EQ(gadget.delta, 4);
  EXPECT_TRUE(is_simple(gadget.gstar));
  ASSERT_TRUE(regularity(gadget.gstar).has_value());
  EXPECT_EQ(*regularity(gadget.gstar), 4);
}

TEST(Gadget, MixedDegreeInstanceGetsPadded) {
  // Triangle + one node participating in a second triangle: degrees 2,2,4.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  RegularEptGadget gadget = build_regular_ept_gadget(g);
  EXPECT_EQ(gadget.delta, 4);
  EXPECT_TRUE(is_simple(gadget.gstar));
  EXPECT_EQ(*regularity(gadget.gstar), 4);
}

TEST(Gadget, LiftedPartitionIsValid) {
  Graph g = triangle_forest(2);
  auto of_g = solve_ept(g);
  ASSERT_TRUE(of_g.has_value());
  RegularEptGadget gadget = build_regular_ept_gadget(g);
  TrianglePartition lifted = lift_triangle_partition(gadget, g, *of_g);
  EXPECT_TRUE(is_triangle_partition(gadget.gstar, lifted));
}

TEST(Gadget, YesInstanceStaysYes) {
  Graph g = triangle_forest(1);
  RegularEptGadget gadget = build_regular_ept_gadget(g);
  auto solution = solve_ept(gadget.gstar);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(is_triangle_partition(gadget.gstar, *solution));
}

TEST(Gadget, NoInstanceStaysNo) {
  // C6: even degrees, m divisible by 3, but triangle-free -> EPT "no".
  Graph g = cycle_graph(6);
  RegularEptGadget gadget = build_regular_ept_gadget(g);
  EXPECT_EQ(*regularity(gadget.gstar), 2);
  EXPECT_FALSE(solve_ept(gadget.gstar).has_value());
}

TEST(Keprg, InstanceFromRegularGraph) {
  Graph g = triangle_forest(2);
  KeprgInstance instance = keprg_from_regular_ept(g);
  EXPECT_EQ(instance.k, 3);
  EXPECT_EQ(instance.budget_l, 6);
}

TEST(Keprg, RejectsIrregular) {
  EXPECT_THROW(keprg_from_regular_ept(star_graph(4)), CheckError);
}

TEST(Keprg, ForwardDirection) {
  Graph g = triangle_forest(2);
  auto triangles = solve_ept(g);
  ASSERT_TRUE(triangles.has_value());
  EdgePartition p = partition_from_triangles(g, *triangles);
  EXPECT_TRUE(validate_partition(g, p).ok);
  EXPECT_EQ(sadm_cost(g, p), g.real_edge_count());
}

TEST(Keprg, BackwardDirection) {
  Graph g = triangle_forest(2);
  EdgePartition p;
  p.k = 3;
  p.parts = {{0, 1, 2}, {3, 4, 5}};
  TrianglePartition t = triangles_from_partition(g, p);
  EXPECT_TRUE(is_triangle_partition(g, t));
}

TEST(Keprg, BackwardDirectionRejectsCostlyPartition) {
  Graph g = triangle_forest(2);
  EdgePartition p;
  p.k = 3;
  p.parts = {{0, 1, 3}, {2, 4, 5}};  // mixes triangles: cost 12 > 6
  EXPECT_THROW(triangles_from_partition(g, p), CheckError);
}

TEST(Keprg, DecideMatchesEptOnBothDirections) {
  // Yes: two triangles.  No: C6 (2-regular, no triangles).
  EXPECT_TRUE(keprg_decide(keprg_from_regular_ept(triangle_forest(2))));
  EXPECT_FALSE(keprg_decide(keprg_from_regular_ept(cycle_graph(6))));
}

TEST(Keprg, Theorem7EquivalenceOnGadgets) {
  // End-to-end over the full reduction chain: EPT(G) == KEPRG(G*, 3, m*)
  // for a yes- and a no-instance.
  for (bool expect_yes : {true, false}) {
    Graph g = expect_yes ? triangle_forest(1) : cycle_graph(6);
    RegularEptGadget gadget = build_regular_ept_gadget(g);
    ASSERT_LE(gadget.gstar.real_edge_count(), 30);
    KeprgInstance instance = keprg_from_regular_ept(gadget.gstar);
    EXPECT_EQ(keprg_decide(instance), expect_yes);
  }
}

}  // namespace
}  // namespace tgroom
