#include <gtest/gtest.h>

#include "algo/edge_coloring.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

TEST(EdgeColoring, EmptyAndSingleEdge) {
  Graph empty(4);
  auto c0 = misra_gries_edge_coloring(empty);
  EXPECT_EQ(c0.color_count, 0);
  EXPECT_TRUE(is_proper_edge_coloring(empty, c0));

  Graph one(2);
  one.add_edge(0, 1);
  auto c1 = misra_gries_edge_coloring(one);
  EXPECT_EQ(c1.color_count, 1);
  EXPECT_TRUE(is_proper_edge_coloring(one, c1));
}

TEST(EdgeColoring, PathWithinVizingBound) {
  // Paths are class 1 (χ' = 2) but Misra–Gries only promises Δ+1; it may
  // legitimately use the extra color depending on fan orientation.
  Graph g = path_graph(6);
  auto c = misra_gries_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(g, c));
  EXPECT_LE(c.color_count, 3);
  EXPECT_GE(c.color_count, 2);
}

TEST(EdgeColoring, OddCycleNeedsThreeColors) {
  Graph g = cycle_graph(5);
  auto c = misra_gries_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(g, c));
  EXPECT_EQ(c.color_count, 3);  // Δ+1 is forced for odd cycles
}

TEST(EdgeColoring, StarUsesExactlyDeltaColors) {
  Graph g = star_graph(7);
  auto c = misra_gries_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(g, c));
  EXPECT_EQ(c.color_count, 6);
}

TEST(EdgeColoring, PetersenWithinVizing) {
  Graph g = petersen_graph();  // class 2: chromatic index 4 = Δ+1
  auto c = misra_gries_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(g, c));
  EXPECT_LE(c.color_count, 4);
  EXPECT_GE(c.color_count, 3);
}

TEST(EdgeColoring, RejectsParallelRealEdges) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_THROW(misra_gries_edge_coloring(g), CheckError);
}

TEST(EdgeColoring, SkipsVirtualEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2, /*is_virtual=*/true);
  auto c = misra_gries_edge_coloring(g);
  EXPECT_EQ(c.color[1], -1);
  EXPECT_TRUE(is_proper_edge_coloring(g, c));
}

TEST(EdgeColoringChecker, CatchesConflicts) {
  Graph g = path_graph(3);
  EdgeColoring bad;
  bad.color_count = 1;
  bad.color = {0, 0};  // both edges share node 1
  EXPECT_FALSE(is_proper_edge_coloring(g, bad));
  EdgeColoring uncolored;
  uncolored.color_count = 2;
  uncolored.color = {0, -1};
  EXPECT_FALSE(is_proper_edge_coloring(g, uncolored));
}

class ColoringRandomP
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ColoringRandomP, ProperAndWithinVizingBound) {
  auto [n, m, seed] = GetParam();
  long long cap = static_cast<long long>(n) * (n - 1) / 2;
  Rng rng(static_cast<std::uint64_t>(seed));
  Graph g = random_gnm(static_cast<NodeId>(n), std::min<long long>(m, cap),
                       rng);
  auto c = misra_gries_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(g, c));
  EXPECT_LE(c.color_count, max_degree(g) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Random, ColoringRandomP,
    ::testing::Combine(::testing::Values(10, 20, 36),
                       ::testing::Values(15, 60, 150),
                       ::testing::Values(1, 2, 3, 4)));

class ColoringRegularP : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(ColoringRegularP, RegularGraphsGetAtMostRPlusOne) {
  auto [n, r] = GetParam();
  Rng rng(42);
  Graph g = random_regular(static_cast<NodeId>(n), static_cast<NodeId>(r),
                           rng);
  auto c = misra_gries_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(g, c));
  EXPECT_LE(c.color_count, r + 1);
}

INSTANTIATE_TEST_SUITE_P(Regular, ColoringRegularP,
                         ::testing::Values(std::pair{36, 7}, std::pair{36, 8},
                                           std::pair{36, 15},
                                           std::pair{36, 16},
                                           std::pair{36, 35}));

TEST(EdgeColoring, CompleteBipartiteWithinVizing) {
  // K_{n,n} is class 1 (χ' = Δ); Misra–Gries must stay within Δ+1 and be
  // proper on this maximally constrained family.
  for (NodeId n : {3, 5, 8}) {
    Graph g = complete_bipartite(n, n);
    auto c = misra_gries_edge_coloring(g);
    EXPECT_TRUE(is_proper_edge_coloring(g, c)) << "K_" << n << "," << n;
    EXPECT_LE(c.color_count, n + 1);
  }
}

TEST(EdgeColoring, CompleteGraphsStress) {
  for (NodeId n : {4, 5, 6, 7, 8, 9}) {
    Graph g = complete_graph(n);
    auto c = misra_gries_edge_coloring(g);
    EXPECT_TRUE(is_proper_edge_coloring(g, c)) << "K" << n;
    EXPECT_LE(c.color_count, n);  // K_n is (n-1)- or n-edge-chromatic
  }
}

}  // namespace
}  // namespace tgroom
