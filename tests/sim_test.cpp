// Dynamic-traffic generation and the event-driven simulator: script
// determinism, arrival-rate shapes, blocking/admission control, the
// per-event Prop-2 assertion, and worker-count-independent load sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/simulator.hpp"

namespace tgroom {
namespace {

std::string script_digest(const DemandScript& script) {
  std::ostringstream out;
  for (std::size_t i = 0; i < script.demands.size(); ++i) {
    out << script.demands[i].a << '-' << script.demands[i].b << '@'
        << script.arrival_time[i] << ':' << script.departure_time[i] << '\n';
  }
  for (const SimEvent& e : script.events) {
    out << e.time << ' ' << static_cast<int>(e.kind) << ' ' << e.demand
        << '\n';
  }
  return out.str();
}

TEST(Traffic, ScriptIsDeterministicPerSeed) {
  TrafficConfig config;
  config.arrivals = 500;
  config.seed = 42;
  EXPECT_EQ(script_digest(generate_script(config)),
            script_digest(generate_script(config)));
  config.seed = 43;
  EXPECT_NE(script_digest(generate_script(config)),
            script_digest(generate_script(TrafficConfig{})));
}

TEST(Traffic, ScriptShapeInvariants) {
  TrafficConfig config;
  config.arrivals = 300;
  config.ring_size = 9;
  const DemandScript script = generate_script(config);
  ASSERT_EQ(script.demands.size(), 300u);
  ASSERT_EQ(script.events.size(), 600u);
  for (std::size_t i = 0; i < script.demands.size(); ++i) {
    EXPECT_LT(script.demands[i].a, script.demands[i].b);
    EXPECT_LT(script.demands[i].b, 9);
    EXPECT_GT(script.departure_time[i], script.arrival_time[i]);
  }
  for (std::size_t i = 1; i < script.events.size(); ++i) {
    EXPECT_LE(script.events[i - 1].time, script.events[i].time);
  }
}

TEST(Traffic, RateShapes) {
  TrafficConfig config;
  config.arrival_rate = 10.0;
  config.load = 2.0;
  config.model = TrafficModel::kPoisson;
  EXPECT_DOUBLE_EQ(traffic_rate_at(config, 0.0), 20.0);
  EXPECT_DOUBLE_EQ(traffic_rate_at(config, 123.0), 20.0);

  config.model = TrafficModel::kDiurnal;
  config.diurnal_depth = 0.5;
  config.diurnal_period = 64.0;
  // Trough at quarter period (sin = 1): (1 - depth) * base.
  EXPECT_NEAR(traffic_rate_at(config, 16.0), 10.0, 1e-9);
  // Peak at three-quarter period (sin = -1): base.
  EXPECT_NEAR(traffic_rate_at(config, 48.0), 20.0, 1e-9);

  config.model = TrafficModel::kFlash;
  config.flash_start = 32.0;
  config.flash_duration = 8.0;
  config.flash_multiplier = 4.0;
  EXPECT_DOUBLE_EQ(traffic_rate_at(config, 31.9), 20.0);
  EXPECT_DOUBLE_EQ(traffic_rate_at(config, 32.0), 80.0);
  EXPECT_DOUBLE_EQ(traffic_rate_at(config, 39.9), 80.0);
  EXPECT_DOUBLE_EQ(traffic_rate_at(config, 40.0), 20.0);
}

TEST(Traffic, ModelNamesRoundTrip) {
  for (TrafficModel model : {TrafficModel::kPoisson, TrafficModel::kDiurnal,
                             TrafficModel::kFlash}) {
    auto parsed = parse_traffic_model(traffic_model_name(model));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, model);
  }
  EXPECT_FALSE(parse_traffic_model("bursty").has_value());
}

TEST(Traffic, RejectsBadConfigs) {
  TrafficConfig config;
  config.ring_size = 1;
  EXPECT_THROW(generate_script(config), CheckError);
  config = TrafficConfig{};
  config.mean_holding = 0.0;
  EXPECT_THROW(generate_script(config), CheckError);
  config = TrafficConfig{};
  config.diurnal_depth = 1.0;
  EXPECT_THROW(generate_script(config), CheckError);
  config = TrafficConfig{};
  config.flash_multiplier = 0.5;
  EXPECT_THROW(generate_script(config), CheckError);
}

TEST(Simulator, UnboundedNeverBlocksAndDrainsToEmpty) {
  TrafficConfig config;
  config.arrivals = 800;
  config.seed = 5;
  SimOptions options;
  const SimResult result = simulate_script(generate_script(config), options);
  EXPECT_EQ(result.arrivals, 800u);
  EXPECT_EQ(result.accepted, 800u);
  EXPECT_EQ(result.blocked, 0u);
  EXPECT_EQ(result.departures, 800u);  // every circuit departs eventually
  EXPECT_EQ(result.blocking_rate, 0.0);
  EXPECT_EQ(result.final_sadms, 0);
  EXPECT_EQ(result.final_wavelengths, 0);
  EXPECT_EQ(result.residual_demands, 0u);
  EXPECT_EQ(result.sadms_added, result.sadms_removed);
  EXPECT_TRUE(result.bound_ok);
  EXPECT_GT(result.peak_sadms, 0);
}

TEST(Simulator, TightBudgetBlocksAndNeverExceedsIt) {
  TrafficConfig config;
  config.arrivals = 600;
  config.load = 6.0;
  config.seed = 11;
  SimOptions options;
  options.k = 2;
  options.max_wavelengths = 1;
  const SimResult result = simulate_script(generate_script(config), options);
  EXPECT_GT(result.blocked, 0u);
  EXPECT_EQ(result.accepted + result.blocked, result.arrivals);
  EXPECT_LE(result.peak_wavelengths, 1);
  EXPECT_GT(result.blocking_rate, 0.0);
  EXPECT_TRUE(result.bound_ok);
  // Blocked demands must not leak releases.
  EXPECT_EQ(result.departures, result.accepted);
}

TEST(Simulator, RepairOnNeverWorseSadmChurnThanOff) {
  TrafficConfig config;
  config.arrivals = 500;
  config.load = 3.0;
  config.seed = 21;
  const DemandScript script = generate_script(config);
  SimOptions repair_on;
  SimOptions repair_off;
  repair_off.repair = false;
  const SimResult with = simulate_script(script, repair_on);
  const SimResult without = simulate_script(script, repair_off);
  EXPECT_GT(with.repair_moves, 0);
  EXPECT_EQ(without.repair_moves, 0);
  EXPECT_LE(with.peak_sadms, without.peak_sadms);
  EXPECT_TRUE(with.bound_ok);
  EXPECT_TRUE(without.bound_ok);
}

TEST(Simulator, ResultIsDeterministic) {
  TrafficConfig config;
  config.model = TrafficModel::kFlash;
  config.arrivals = 400;
  config.seed = 9;
  SimOptions options;
  options.max_wavelengths = 3;
  const DemandScript script = generate_script(config);
  const SimResult a = simulate_script(script, options);
  const SimResult b = simulate_script(script, options);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.sadms_added, b.sadms_added);
  EXPECT_EQ(a.sadms_removed, b.sadms_removed);
  EXPECT_EQ(a.repair_moves, b.repair_moves);
  EXPECT_EQ(a.peak_sadms, b.peak_sadms);
  EXPECT_EQ(a.final_sadms, b.final_sadms);
}

TEST(Simulator, LatencyCollectionDoesNotChangeTheOutcome) {
  TrafficConfig config;
  config.arrivals = 300;
  config.seed = 33;
  const DemandScript script = generate_script(config);
  SimOptions plain;
  SimOptions timed;
  timed.collect_latency = true;
  const SimResult a = simulate_script(script, plain);
  const SimResult b = simulate_script(script, timed);
  EXPECT_EQ(a.sadms_added, b.sadms_added);
  EXPECT_EQ(a.repair_moves, b.repair_moves);
  EXPECT_EQ(a.peak_sadms, b.peak_sadms);
  EXPECT_EQ(a.arrival_latency.count, 0);
  EXPECT_EQ(b.arrival_latency.count, static_cast<long long>(b.accepted));
  EXPECT_EQ(b.release_latency.count, static_cast<long long>(b.departures));
}

std::string sweep_digest(const LoadSweepResult& sweep) {
  std::ostringstream out;
  out << sweep.threshold_index << '\n';
  for (const LoadPoint& p : sweep.points) {
    out << p.load << ' ' << p.result.accepted << ' ' << p.result.blocked
        << ' ' << p.result.sadms_added << ' ' << p.result.sadms_removed
        << ' ' << p.result.repair_moves << ' ' << p.result.peak_sadms
        << ' ' << p.result.peak_wavelengths << '\n';
  }
  return out.str();
}

TEST(LoadSweep, BitIdenticalAcrossWorkerCounts) {
  LoadSweepOptions options;
  options.traffic.arrivals = 200;
  options.traffic.seed = 77;
  options.sim.k = 4;
  options.sim.max_wavelengths = 2;
  options.load_start = 0.5;
  options.load_step = 1.0;
  options.load_steps = 5;
  options.blocking_threshold = 0.01;

  options.workers = 0;
  const std::string inline_digest = sweep_digest(run_load_sweep(options));
  for (std::size_t workers : {1u, 4u}) {
    options.workers = workers;
    EXPECT_EQ(sweep_digest(run_load_sweep(options)), inline_digest)
        << "workers=" << workers;
  }
}

TEST(LoadSweep, FindsTheBlockingKnee) {
  LoadSweepOptions options;
  options.traffic.arrivals = 300;
  options.traffic.seed = 3;
  options.sim.k = 2;
  options.sim.max_wavelengths = 1;
  options.load_start = 0.25;
  options.load_step = 2.0;
  options.load_steps = 6;
  options.blocking_threshold = 0.05;
  const LoadSweepResult sweep = run_load_sweep(options);
  ASSERT_EQ(sweep.points.size(), 6u);
  ASSERT_GE(sweep.threshold_index, 0);
  // Everything before the knee is under the threshold, the knee is at or
  // over it.
  for (int i = 0; i < sweep.threshold_index; ++i) {
    EXPECT_LT(sweep.points[static_cast<std::size_t>(i)].result.blocking_rate,
              0.05);
  }
  EXPECT_GE(sweep.points[static_cast<std::size_t>(sweep.threshold_index)]
                .result.blocking_rate,
            0.05);
  for (const LoadPoint& p : sweep.points) EXPECT_TRUE(p.result.bound_ok);
}

TEST(LoadSweep, PointSeedsAreDecorrelatedButStable) {
  EXPECT_EQ(load_point_seed(1, 0), load_point_seed(1, 0));
  EXPECT_NE(load_point_seed(1, 0), load_point_seed(1, 1));
  EXPECT_NE(load_point_seed(1, 0), load_point_seed(2, 0));
}

}  // namespace
}  // namespace tgroom
