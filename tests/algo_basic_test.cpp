#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "algo/min_degree_tree.hpp"
#include "algo/rooted_tree.hpp"
#include "algo/spanning_tree.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

TEST(Components, CountsAndLabels) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  auto groups = c.groups();
  ASSERT_EQ(groups.size(), 3u);
}

TEST(Components, MaskedVariant) {
  Graph g = cycle_graph(6);
  std::vector<char> mask(6, 1);
  mask[0] = 0;
  mask[3] = 0;
  Components c = connected_components_masked(g, mask);
  EXPECT_EQ(c.count, 2);
}

TEST(Components, IsConnected) {
  EXPECT_TRUE(is_connected(cycle_graph(5)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
  Graph g(2);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, EdgeConnectivity) {
  EXPECT_EQ(edge_connectivity(cycle_graph(6)), 2);
  EXPECT_EQ(edge_connectivity(path_graph(5)), 1);
  EXPECT_EQ(edge_connectivity(complete_graph(5)), 4);
  EXPECT_EQ(edge_connectivity(petersen_graph()), 3);
  Graph disconnected(3);
  disconnected.add_edge(0, 1);
  EXPECT_EQ(edge_connectivity(disconnected), 0);
}

class SpanningTreeP : public ::testing::TestWithParam<TreePolicy> {};

TEST_P(SpanningTreeP, ValidForestOnVariousGraphs) {
  Rng rng(17);
  std::vector<Graph> graphs;
  graphs.push_back(cycle_graph(8));
  graphs.push_back(complete_graph(7));
  graphs.push_back(petersen_graph());
  graphs.push_back(random_gnm(20, 40, rng));
  Graph two_comp(7);
  two_comp.add_edge(0, 1);
  two_comp.add_edge(1, 2);
  two_comp.add_edge(4, 5);
  two_comp.add_edge(5, 6);
  two_comp.add_edge(6, 4);
  graphs.push_back(two_comp);

  for (const Graph& g : graphs) {
    Rng tree_rng(7);
    auto tree = spanning_forest(g, GetParam(), &tree_rng);
    EXPECT_TRUE(is_spanning_forest(g, tree));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SpanningTreeP,
                         ::testing::Values(TreePolicy::kBfs, TreePolicy::kDfs,
                                           TreePolicy::kRandom,
                                           TreePolicy::kMinMaxDegree),
                         [](const auto& param_info) {
                           std::string name = tree_policy_name(param_info.param);
                           for (auto& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

TEST(SpanningTree, RandomPolicyNeedsRng) {
  Graph g = cycle_graph(4);
  EXPECT_THROW(spanning_forest(g, TreePolicy::kRandom, nullptr), CheckError);
}

TEST(SpanningTree, IsSpanningForestRejectsCycles) {
  Graph g = cycle_graph(3);
  EXPECT_FALSE(is_spanning_forest(g, {0, 1, 2}));  // all three edges
  EXPECT_TRUE(is_spanning_forest(g, {0, 1}));
}

TEST(SpanningTree, IsSpanningForestRejectsNonSpanning) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_spanning_forest(g, {0}));  // misses component {2,3}
  EXPECT_TRUE(is_spanning_forest(g, {0, 1}));
}

TEST(MinDegreeTree, BeatsBfsOnStarOfPaths) {
  // A wheel-like graph: hub joined to all cycle nodes; BFS from the hub
  // yields a star (degree n-1); local search should do much better because
  // the cycle offers degree-2 alternatives.
  NodeId n = 12;
  Graph g = cycle_graph(n);
  NodeId hub = g.add_node();
  for (NodeId v = 0; v < n; ++v) g.add_edge(hub, v);
  auto tree = min_max_degree_forest(g);
  EXPECT_TRUE(is_spanning_forest(g, tree));
  EXPECT_LE(forest_max_degree(g, tree), 3);
}

TEST(MinDegreeTree, HamiltonianPathStaysDegreeTwo) {
  Graph g = cycle_graph(10);
  auto tree = min_max_degree_forest(g);
  EXPECT_EQ(forest_max_degree(g, tree), 2);
}

TEST(RootedForest, ParentStructure) {
  Graph g = path_graph(5);
  auto tree = spanning_forest(g, TreePolicy::kBfs);
  RootedForest f = root_forest(g, tree);
  EXPECT_EQ(f.preorder.size(), 5u);
  EXPECT_EQ(f.parent[static_cast<std::size_t>(f.preorder[0])], kInvalidNode);
  // Every non-root's parent appears earlier in preorder.
  std::vector<int> pos(5);
  for (int i = 0; i < 5; ++i)
    pos[static_cast<std::size_t>(f.preorder[static_cast<std::size_t>(i)])] = i;
  for (NodeId v = 0; v < 5; ++v) {
    if (f.parent[static_cast<std::size_t>(v)] == kInvalidNode) continue;
    EXPECT_LT(pos[static_cast<std::size_t>(
                  f.parent[static_cast<std::size_t>(v)])],
              pos[static_cast<std::size_t>(v)]);
  }
}

TEST(RootedForest, SubtreeSums) {
  // Star with hub 0: the hub's subtree holds everything; leaves hold 1.
  Graph g = star_graph(5);
  auto tree = spanning_forest(g, TreePolicy::kBfs);
  RootedForest f = root_forest(g, tree);
  std::vector<long long> weight(5, 1);
  auto sums = subtree_sums(f, weight);
  EXPECT_EQ(sums[static_cast<std::size_t>(f.preorder[0])], 5);
}

TEST(RootedForest, OddSubtreeEdges) {
  // Path 0-1-2-3 with odd weight only at the two ends: the middle edge has
  // an odd-weight subtree below it; end edges too.
  Graph g = path_graph(4);
  std::vector<EdgeId> tree{0, 1, 2};
  RootedForest f = root_forest(g, tree);
  std::vector<long long> weight{1, 0, 0, 1};
  auto odd = odd_subtree_edges(g, f, weight);
  // Rooted at 0: edges below subtrees {1,2,3}(w=1), {2,3}(w=1), {3}(w=1):
  // all three edges are odd.
  EXPECT_EQ(odd.size(), 3u);
}

}  // namespace
}  // namespace tgroom
