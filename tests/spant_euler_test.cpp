#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "algorithms/spant_euler.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"

namespace tgroom {
namespace {

void expect_valid_min_wavelength(const Graph& g, const EdgePartition& p,
                                 int k) {
  auto v = validate_partition(g, p);
  EXPECT_TRUE(v.ok) << v.reason;
  EXPECT_EQ(p.k, k);
  EXPECT_TRUE(uses_min_wavelengths(g, p));
  for (std::size_t i = 0; i + 1 < p.parts.size(); ++i) {
    EXPECT_EQ(p.parts[i].size(), static_cast<std::size_t>(k));
  }
}

TEST(SpanTEuler, EmptyGraph) {
  Graph g(5);
  EdgePartition p = spant_euler(g, 4);
  EXPECT_TRUE(p.parts.empty());
}

TEST(SpanTEuler, SingleEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  EdgePartition p = spant_euler(g, 4);
  expect_valid_min_wavelength(g, p, 4);
  EXPECT_EQ(sadm_cost(g, p), 2);
}

TEST(SpanTEuler, TreeInput) {
  // On a tree, G\T is empty: everything becomes branches on singleton
  // skeletons.
  Graph g = caterpillar_graph(5, 2);
  for (int k : {2, 3, 5}) {
    EdgePartition p = spant_euler(g, k);
    expect_valid_min_wavelength(g, p, k);
  }
}

TEST(SpanTEuler, StarGetsOptimalCost) {
  Graph g = star_graph(9);  // 8 edges, all share the hub
  EdgePartition p = spant_euler(g, 4);
  expect_valid_min_wavelength(g, p, 4);
  // Each part: 4 edges through the hub = 5 nodes; 2 parts -> 10 SADMs.
  EXPECT_EQ(sadm_cost(g, p), 10);
}

TEST(SpanTEuler, CycleIsOneBackbone) {
  Graph g = cycle_graph(12);
  SpanTEulerTrace trace;
  EdgePartition p = spant_euler(g, 4, {}, &trace);
  expect_valid_min_wavelength(g, p, 4);
  EXPECT_EQ(sadm_cost(g, p), 12 + 3);  // three segments of 4 edges, 5 nodes
}

TEST(SpanTEuler, TraceInvariants) {
  Rng rng(5);
  Graph g = random_gnm(20, 60, rng);
  SpanTEulerTrace trace;
  EdgePartition p = spant_euler(g, 8, {}, &trace);
  auto v = validate_partition(g, p);
  ASSERT_TRUE(v.ok) << v.reason;

  EXPECT_TRUE(is_spanning_forest(g, trace.tree));
  // E_odd is a subset of the tree.
  std::vector<char> in_tree(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e : trace.tree) in_tree[static_cast<std::size_t>(e)] = 1;
  for (EdgeId e : trace.e_odd)
    EXPECT_TRUE(in_tree[static_cast<std::size_t>(e)]);

  // G'' = E_odd ∪ (E\T) has all even degrees (Lemma 4's core claim).
  std::vector<char> g2(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    g2[static_cast<std::size_t>(e)] = !in_tree[static_cast<std::size_t>(e)];
  for (EdgeId e : trace.e_odd) g2[static_cast<std::size_t>(e)] = 1;
  for (NodeId deg : masked_degrees(g, g2)) EXPECT_EQ(deg % 2, 0);

  // The cover is a genuine skeleton cover of G.
  EXPECT_TRUE(validate_cover(g, trace.cover));
  EXPECT_TRUE(cover_spans_all_edges(g, trace.cover));

  // Lemma 4: cover size <= c = #components of G\T.
  EXPECT_LE(static_cast<int>(trace.cover.size()), trace.g2_component_count);
}

class SpanTEulerBoundP
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SpanTEulerBoundP, Theorem5BoundHolds) {
  auto [seed, dense, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Graph g = random_dense_ratio(36, dense, rng);
  SpanTEulerTrace trace;
  EdgePartition p = spant_euler(g, k, {}, &trace);
  auto v = validate_partition(g, p);
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_TRUE(uses_min_wavelengths(g, p));
  // Theorem 5: cost <= m + ceil(m/k) + (c-1) via the realized cover size
  // (which Lemma 4 bounds by c).
  EXPECT_LE(sadm_cost(g, p),
            prop2_cost_bound(g.real_edge_count(), k, trace.cover.size()));
  EXPECT_LE(sadm_cost(g, p),
            spant_euler_cost_bound(g.real_edge_count(), k,
                                   trace.g2_component_count));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpanTEulerBoundP,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.3, 0.5, 0.8),
                       ::testing::Values(3, 4, 16, 48)));

class SpanTEulerTreePolicyP : public ::testing::TestWithParam<TreePolicy> {};

TEST_P(SpanTEulerTreePolicyP, AllTreePoliciesProduceValidPartitions) {
  Rng rng(11);
  Graph g = random_gnm(24, 80, rng);
  GroomingOptions options;
  options.tree_policy = GetParam();
  options.seed = 3;
  EdgePartition p = spant_euler(g, 8, options);
  expect_valid_min_wavelength(g, p, 8);
}

INSTANTIATE_TEST_SUITE_P(Policies, SpanTEulerTreePolicyP,
                         ::testing::Values(TreePolicy::kBfs, TreePolicy::kDfs,
                                           TreePolicy::kRandom,
                                           TreePolicy::kMinMaxDegree));

TEST(SpanTEuler, DisconnectedInput) {
  Graph g(10);
  // Triangle + path + isolated nodes.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  EdgePartition p = spant_euler(g, 2);
  expect_valid_min_wavelength(g, p, 2);
}

TEST(SpanTEuler, RejectsVirtualEdgesInInput) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2, /*is_virtual=*/true);
  EXPECT_THROW(spant_euler(g, 2), CheckError);
}

TEST(SpanTEuler, RejectsBadK) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(spant_euler(g, 0), CheckError);
}

TEST(SpanTEuler, SmartBranchesStaysValid) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    Graph g = random_gnm(24, 60, rng);
    GroomingOptions smart;
    smart.smart_branches = true;
    EdgePartition p = spant_euler(g, 8, smart);
    expect_valid_min_wavelength(g, p, 8);
  }
}

TEST(SpanTEuler, SmartBranchesHelpsOnDoubleStar) {
  // Two hubs with many leaves joined by an edge: hub-anchored attachment
  // must keep each hub's leaves together.
  Graph g(22);
  g.add_edge(0, 1);
  for (NodeId leaf = 2; leaf < 12; ++leaf) g.add_edge(0, leaf);
  for (NodeId leaf = 12; leaf < 22; ++leaf) g.add_edge(1, leaf);
  GroomingOptions plain;
  GroomingOptions smart;
  smart.smart_branches = true;
  long long base = sadm_cost(g, spant_euler(g, 5, plain));
  long long clustered = sadm_cost(g, spant_euler(g, 5, smart));
  EXPECT_LE(clustered, base);
}

TEST(SpanTEuler, KOneDegenerate) {
  Graph g = complete_graph(5);
  EdgePartition p = spant_euler(g, 1);
  expect_valid_min_wavelength(g, p, 1);
  EXPECT_EQ(sadm_cost(g, p), 2 * g.real_edge_count());
}

TEST(SpanTEuler, KLargerThanM) {
  Graph g = complete_graph(5);  // m=10, one wavelength when k=16
  EdgePartition p = spant_euler(g, 16);
  expect_valid_min_wavelength(g, p, 16);
  EXPECT_EQ(p.parts.size(), 1u);
  EXPECT_EQ(sadm_cost(g, p), 5);
}

}  // namespace
}  // namespace tgroom
