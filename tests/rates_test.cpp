#include <gtest/gtest.h>

#include "sonet/rates.hpp"
#include "util/check.hpp"

namespace tgroom {
namespace {

TEST(Rates, Multipliers) {
  EXPECT_EQ(oc_multiplier(OcRate::kOc1), 1);
  EXPECT_EQ(oc_multiplier(OcRate::kOc3), 3);
  EXPECT_EQ(oc_multiplier(OcRate::kOc12), 12);
  EXPECT_EQ(oc_multiplier(OcRate::kOc48), 48);
  EXPECT_EQ(oc_multiplier(OcRate::kOc192), 192);
  EXPECT_EQ(oc_multiplier(OcRate::kOc768), 768);
}

TEST(Rates, Bandwidths) {
  EXPECT_EQ(oc_bandwidth_kbps(OcRate::kOc1), 51840);
  EXPECT_EQ(oc_bandwidth_kbps(OcRate::kOc3), 155520);   // STS-3 / STM-1
  EXPECT_EQ(oc_bandwidth_kbps(OcRate::kOc48), 2488320); // ~2.5 Gbit/s
}

TEST(Rates, Names) {
  EXPECT_EQ(oc_name(OcRate::kOc48), "OC-48");
  EXPECT_EQ(oc_name(OcRate::kOc3), "OC-3");
}

TEST(Rates, Parse) {
  EXPECT_EQ(parse_oc_rate("OC-48"), OcRate::kOc48);
  EXPECT_EQ(parse_oc_rate("oc3"), OcRate::kOc3);
  EXPECT_EQ(parse_oc_rate("192"), OcRate::kOc192);
  EXPECT_EQ(parse_oc_rate("OC-7"), std::nullopt);
  EXPECT_EQ(parse_oc_rate(""), std::nullopt);
  EXPECT_EQ(parse_oc_rate("fast"), std::nullopt);
}

TEST(Rates, GroomingFactorPaperExample) {
  // §1: "sixteen OC-3 traffic demands multiplexed onto one OC-48
  // wavelength channel gives a grooming factor of 16".
  EXPECT_EQ(grooming_factor(OcRate::kOc48, OcRate::kOc3), 16);
  EXPECT_EQ(grooming_factor(OcRate::kOc48, OcRate::kOc12), 4);
  EXPECT_EQ(grooming_factor(OcRate::kOc192, OcRate::kOc3), 64);
  EXPECT_EQ(grooming_factor(OcRate::kOc3, OcRate::kOc3), 1);
}

TEST(Rates, GroomingFactorRejectsInversion) {
  EXPECT_THROW(grooming_factor(OcRate::kOc3, OcRate::kOc48), CheckError);
}

}  // namespace
}  // namespace tgroom
