#include <gtest/gtest.h>

#include "gen/families.hpp"
#include "grooming/demand.hpp"
#include "grooming/plan.hpp"

namespace tgroom {
namespace {

TEST(DemandSet, AddAndNormalize) {
  DemandSet d(6);
  d.add_pair(4, 1);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.pairs()[0].a, 1);
  EXPECT_EQ(d.pairs()[0].b, 4);
  EXPECT_TRUE(d.contains(1, 4));
  EXPECT_TRUE(d.contains(4, 1));
}

TEST(DemandSet, RejectsInvalidPairs) {
  DemandSet d(4);
  EXPECT_THROW(d.add_pair(0, 0), CheckError);
  EXPECT_THROW(d.add_pair(0, 4), CheckError);
  d.add_pair(0, 1);
  EXPECT_THROW(d.add_pair(1, 0), CheckError);  // duplicate after normalize
}

TEST(DemandSet, TrafficGraphRoundTrip) {
  DemandSet d(5);
  d.add_pair(0, 2);
  d.add_pair(2, 4);
  Graph g = d.traffic_graph();
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 2);
  DemandSet back = DemandSet::from_traffic_graph(g);
  EXPECT_EQ(back.pairs(), d.pairs());
}

TEST(DemandSet, SerializeParseRoundTrip) {
  DemandSet d(7);
  d.add_pair(0, 6);
  d.add_pair(3, 2);
  DemandSet back = DemandSet::parse(d.serialize());
  EXPECT_EQ(back.ring_size(), 7);
  EXPECT_EQ(back.pairs(), d.pairs());
}

TEST(Plan, FromPartitionAssignsSlots) {
  DemandSet d(5);
  d.add_pair(0, 1);
  d.add_pair(1, 2);
  d.add_pair(2, 3);
  Graph g = d.traffic_graph();
  EdgePartition p;
  p.k = 2;
  p.parts = {{0, 1}, {2}};
  GroomingPlan plan = plan_from_partition(d, g, p);
  ASSERT_EQ(plan.pairs.size(), 3u);
  EXPECT_EQ(plan.wavelength_count(), 2);
  EXPECT_EQ(plan.pairs[0].wavelength, 0);
  EXPECT_EQ(plan.pairs[0].timeslot, 0);
  EXPECT_EQ(plan.pairs[1].timeslot, 1);
  EXPECT_EQ(plan.pairs[2].wavelength, 1);
}

TEST(Plan, SadmCountMatchesPartitionCost) {
  DemandSet d(6);
  d.add_pair(0, 1);
  d.add_pair(1, 2);
  d.add_pair(3, 4);
  Graph g = d.traffic_graph();
  EdgePartition p;
  p.k = 2;
  p.parts = {{0, 1}, {2}};
  GroomingPlan plan = plan_from_partition(d, g, p);
  EXPECT_EQ(plan_sadm_count(plan), sadm_cost(g, p));
  auto per_wavelength = plan_sadms_per_wavelength(plan);
  EXPECT_EQ(per_wavelength, (std::vector<int>{3, 2}));
}

TEST(Plan, BypassCount) {
  DemandSet d(8);
  d.add_pair(0, 1);
  Graph g = d.traffic_graph();
  EdgePartition p;
  p.k = 1;
  p.parts = {{0}};
  GroomingPlan plan = plan_from_partition(d, g, p);
  // 1 wavelength, 8 nodes, 2 SADMs -> 6 bypasses.
  EXPECT_EQ(plan_bypass_count(plan), 6);
}

TEST(Plan, SerializeParseRoundTrip) {
  GroomingPlan plan;
  plan.ring_size = 9;
  plan.grooming_factor = 3;
  plan.pairs = {{DemandPair{0, 4}, 0, 0},
                {DemandPair{2, 7}, 0, 1},
                {DemandPair{1, 8}, 1, 0}};
  GroomingPlan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.ring_size, plan.ring_size);
  EXPECT_EQ(back.grooming_factor, plan.grooming_factor);
  ASSERT_EQ(back.pairs.size(), plan.pairs.size());
  for (std::size_t i = 0; i < plan.pairs.size(); ++i) {
    EXPECT_EQ(back.pairs[i].pair, plan.pairs[i].pair);
    EXPECT_EQ(back.pairs[i].wavelength, plan.pairs[i].wavelength);
    EXPECT_EQ(back.pairs[i].timeslot, plan.pairs[i].timeslot);
  }
}

TEST(Plan, ParseSkipsCommentsAndNormalizesPairs) {
  GroomingPlan plan = parse_plan("# comment\n6 2 1\n\n5 1 0 1\n");
  EXPECT_EQ(plan.ring_size, 6);
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_EQ(plan.pairs[0].pair, (DemandPair{1, 5}));
  EXPECT_EQ(plan.pairs[0].timeslot, 1);
}

TEST(Plan, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_plan(""), CheckError);
  EXPECT_THROW(parse_plan("6 0 1\n0 1 0 0\n"), CheckError);   // k < 1
  EXPECT_THROW(parse_plan("6 2 2\n0 1 0 0\n"), CheckError);   // truncated
  EXPECT_THROW(parse_plan("6 2 1\n0 1 0\n"), CheckError);     // short row
}

TEST(Plan, RejectsOversizedPart) {
  DemandSet d(4);
  d.add_pair(0, 1);
  d.add_pair(1, 2);
  Graph g = d.traffic_graph();
  EdgePartition p;
  p.k = 1;
  p.parts = {{0, 1}};
  EXPECT_THROW(plan_from_partition(d, g, p), CheckError);
}

}  // namespace
}  // namespace tgroom
