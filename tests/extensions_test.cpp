#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "algorithms/clique_pack.hpp"
#include "algorithms/refine.hpp"
#include "algorithms/spant_euler.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"

namespace tgroom {
namespace {

void expect_valid_min_wavelength(const Graph& g, const EdgePartition& p) {
  auto v = validate_partition(g, p);
  EXPECT_TRUE(v.ok) << v.reason;
  EXPECT_TRUE(uses_min_wavelengths(g, p));
}

TEST(CliquePack, TriangleForestIsOptimal) {
  Graph g = triangle_forest(4);  // 12 edges in 4 disjoint triangles
  EdgePartition p = clique_pack(g, 3);
  expect_valid_min_wavelength(g, p);
  EXPECT_EQ(sadm_cost(g, p), 12);  // each part exactly one triangle
}

TEST(CliquePack, CompleteGraphBlocks) {
  Graph g = complete_graph(6);  // 15 edges
  EdgePartition p = clique_pack(g, 5);
  expect_valid_min_wavelength(g, p);
  // K6 with k=5: three parts; dense packing keeps each around 4-5 nodes.
  EXPECT_LE(sadm_cost(g, p), 15);
}

class CliquePackP : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(CliquePackP, ValidOnRandomGraphs) {
  auto [seed, dense] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Graph g = random_dense_ratio(36, dense, rng);
  for (int k : {3, 6, 16}) {
    EdgePartition p = clique_pack(g, k);
    expect_valid_min_wavelength(g, p);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CliquePackP,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0.3, 0.8)));

TEST(Refine, NeverWorsensAndStaysValid) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    Graph g = random_gnm(20, 60, rng);
    EdgePartition p = spant_euler(g, 6);
    long long before = sadm_cost(g, p);
    RefineStats stats = refine_partition(g, p);
    EXPECT_EQ(stats.cost_before, before);
    EXPECT_LE(stats.cost_after, stats.cost_before);
    EXPECT_EQ(sadm_cost(g, p), stats.cost_after);
    auto v = validate_partition(g, p);
    EXPECT_TRUE(v.ok) << v.reason;
    EXPECT_LE(p.parts.size(),
              static_cast<std::size_t>(
                  min_wavelengths(g.real_edge_count(), 6)));
  }
}

TEST(Refine, FindsObviousImprovement) {
  // Two triangles, deliberately mis-partitioned across parts.
  Graph g = triangle_forest(2);
  EdgePartition bad;
  bad.k = 3;
  bad.parts = {{0, 3, 1}, {2, 4, 5}};  // mixes the triangles
  long long before = sadm_cost(g, bad);
  EXPECT_EQ(before, 10);  // {e0,e3,e1} spans 5 nodes, {e2,e4,e5} spans 5
  RefineStats stats = refine_partition(g, bad);
  EXPECT_EQ(stats.cost_after, 6);  // swaps reassemble both triangles
  EXPECT_GT(stats.swaps + stats.relocations, 0);
}

TEST(Refine, FixedPointOnOptimal) {
  Graph g = triangle_forest(3);
  EdgePartition p = clique_pack(g, 3);
  RefineStats stats = refine_partition(g, p);
  EXPECT_EQ(stats.cost_before, stats.cost_after);
  EXPECT_EQ(stats.passes, 1);
}

TEST(RunAlgorithm, RegistryDispatchesAllIds) {
  Rng rng(4);
  Graph g = random_gnm(16, 40, rng);
  for (AlgorithmId id :
       {AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
        AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler,
        AlgorithmId::kCliquePack}) {
    EdgePartition p = run_algorithm(id, g, 8);
    auto v = validate_partition(g, p);
    EXPECT_TRUE(v.ok) << algorithm_name(id) << ": " << v.reason;
  }
}

TEST(RunAlgorithm, RefineOptionImprovesOrTies) {
  Rng rng(8);
  Graph g = random_gnm(24, 90, rng);
  GroomingOptions plain;
  GroomingOptions refined;
  refined.refine = true;
  long long base =
      sadm_cost(g, run_algorithm(AlgorithmId::kWangGuIcc06, g, 6, plain));
  long long better =
      sadm_cost(g, run_algorithm(AlgorithmId::kWangGuIcc06, g, 6, refined));
  EXPECT_LE(better, base);
}

TEST(RunAlgorithm, NamesAreStable) {
  EXPECT_STREQ(algorithm_name(AlgorithmId::kSpanTEuler), "SpanT_Euler");
  EXPECT_STREQ(algorithm_name(AlgorithmId::kRegularEuler), "Regular_Euler");
  EXPECT_EQ(figure4_algorithms().size(), 4u);
  EXPECT_EQ(figure5_algorithms().size(), 4u);
  EXPECT_EQ(figure4_algorithms().back(), AlgorithmId::kSpanTEuler);
  EXPECT_EQ(figure5_algorithms().back(), AlgorithmId::kRegularEuler);
}

}  // namespace
}  // namespace tgroom
