// Failure injection against the UPSR protection model.
#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/plan.hpp"
#include "sonet/protection.hpp"
#include "sonet/simulator.hpp"

namespace tgroom {
namespace {

GroomingPlan sample_plan(NodeId n, double dense, int k,
                         std::uint64_t seed = 3) {
  Rng rng(seed);
  DemandSet demands = random_traffic(n, dense, rng);
  Graph traffic = demands.traffic_graph();
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, traffic, k);
  return plan_from_partition(demands, traffic, p);
}

TEST(Protection, SingleSpanFailureAlwaysRecovers) {
  GroomingPlan plan = sample_plan(12, 0.5, 4);
  UpsrRing ring(12);
  for (NodeId span = 0; span < ring.link_count(); ++span) {
    SpanFailureImpact impact = simulate_span_failure(ring, plan, span);
    EXPECT_TRUE(impact.fully_recovered()) << "span " << span;
    EXPECT_EQ(impact.lost_demands, 0);
  }
}

TEST(Protection, EveryDirectedDemandCrossesEachSpanOnce) {
  // Across a pair's two directions exactly one crosses any given span, so
  // switched == number of pairs for every span.
  GroomingPlan plan = sample_plan(10, 0.4, 3);
  UpsrRing ring(10);
  for (NodeId span = 0; span < ring.link_count(); ++span) {
    SpanFailureImpact impact = simulate_span_failure(ring, plan, span);
    EXPECT_EQ(impact.switched_demands,
              static_cast<int>(plan.pairs.size()));
  }
}

TEST(Protection, ExtraHopsFormula) {
  // One pair {0, 2} on a 6-ring: direction 0->2 has 2 hops, 2->0 has 4.
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 1;
  plan.pairs = {{DemandPair{0, 2}, 0, 0}};
  UpsrRing ring(6);
  // Failing span 0 (link 0->1) cuts the 0->2 direction (2 hops); its
  // protection path has 4 hops: +2.
  SpanFailureImpact impact = simulate_span_failure(ring, plan, 0);
  EXPECT_EQ(impact.switched_demands, 1);
  EXPECT_EQ(impact.extra_hops, 2);
  // Failing span 3 (link 3->4) cuts the 2->0 direction (4 hops);
  // protection has 2: -2.
  impact = simulate_span_failure(ring, plan, 3);
  EXPECT_EQ(impact.switched_demands, 1);
  EXPECT_EQ(impact.extra_hops, -2);
}

TEST(Protection, ProtectionLoadWithinGroomingFactor) {
  GroomingPlan plan = sample_plan(16, 0.6, 6);
  UpsrRing ring(16);
  for (NodeId span = 0; span < ring.link_count(); ++span) {
    SpanFailureImpact impact = simulate_span_failure(ring, plan, span);
    EXPECT_LE(impact.peak_protection_load, plan.grooming_factor);
  }
}

TEST(Protection, DoubleFailureLosesStraddlingDemands) {
  // Pair {0, 3} on an 8-ring: working 0->3 uses spans 0,1,2; working 3->0
  // uses 3..7.  Failing spans 1 and 5 cuts one span on each directed
  // path's working side -> both directions lose exactly one copy... the
  // 0->3 direction loses working (span 1) and its protection runs over
  // spans 3..7 which includes failed span 5: lost.  Likewise 3->0.
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 1;
  plan.pairs = {{DemandPair{0, 3}, 0, 0}};
  UpsrRing ring(8);
  SpanFailureImpact impact = simulate_double_failure(ring, plan, 1, 5);
  EXPECT_EQ(impact.lost_demands, 2);
  EXPECT_EQ(impact.switched_demands, 0);
}

TEST(Protection, DoubleFailureOnSameArcSurvives) {
  GroomingPlan plan;
  plan.ring_size = 8;
  plan.grooming_factor = 1;
  plan.pairs = {{DemandPair{0, 3}, 0, 0}};
  UpsrRing ring(8);
  // Both failures on the 0->3 working arc: that direction switches, the
  // other is untouched.
  SpanFailureImpact impact = simulate_double_failure(ring, plan, 0, 2);
  EXPECT_EQ(impact.lost_demands, 0);
  EXPECT_EQ(impact.switched_demands, 1);
}

TEST(Protection, DoubleFailureRejectsSameSpan) {
  GroomingPlan plan = sample_plan(8, 0.4, 2);
  UpsrRing ring(8);
  EXPECT_THROW(simulate_double_failure(ring, plan, 2, 2), CheckError);
}

TEST(Protection, SurvivabilityReportSweepsAllSpans) {
  GroomingPlan plan = sample_plan(14, 0.5, 4);
  UpsrRing ring(14);
  SurvivabilityReport report = survivability_report(ring, plan);
  EXPECT_TRUE(report.survives_all_single_failures);
  EXPECT_EQ(report.per_span.size(), 14u);
  EXPECT_EQ(report.worst_case_switched,
            static_cast<int>(plan.pairs.size()));
  std::string text = render_survivability(report);
  EXPECT_NE(text.find("all single span failures recovered"),
            std::string::npos);
  EXPECT_EQ(text.find("LOST"), std::string::npos);
}

TEST(Protection, EmptyPlanTriviallySurvives) {
  GroomingPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 4;
  UpsrRing ring(6);
  SurvivabilityReport report = survivability_report(ring, plan);
  EXPECT_TRUE(report.survives_all_single_failures);
  EXPECT_EQ(report.worst_case_switched, 0);
}

class ProtectionAlgorithmsP : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(ProtectionAlgorithmsP, AllAlgorithmsYieldSurvivablePlans) {
  Rng rng(11);
  DemandSet demands = random_traffic(18, 0.5, rng);
  Graph traffic = demands.traffic_graph();
  EdgePartition p = run_algorithm(GetParam(), traffic, 8);
  GroomingPlan plan = plan_from_partition(demands, traffic, p);
  UpsrRing ring(18);
  EXPECT_TRUE(simulate_plan(ring, plan).ok);
  EXPECT_TRUE(
      survivability_report(ring, plan).survives_all_single_failures);
}

INSTANTIATE_TEST_SUITE_P(All, ProtectionAlgorithmsP,
                         ::testing::Values(AlgorithmId::kGoldschmidt,
                                           AlgorithmId::kBrauner,
                                           AlgorithmId::kWangGuIcc06,
                                           AlgorithmId::kSpanTEuler,
                                           AlgorithmId::kCliquePack));

}  // namespace
}  // namespace tgroom
