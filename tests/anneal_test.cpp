#include <gtest/gtest.h>

#include "algorithms/anneal.hpp"
#include "algorithms/refine.hpp"
#include "algorithms/spant_euler.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"

namespace tgroom {
namespace {

TEST(Anneal, NeverRegressesAndStaysValid) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    Graph g = random_gnm(20, 60, rng);
    EdgePartition p = spant_euler(g, 6);
    long long before = sadm_cost(g, p);
    AnnealOptions options;
    options.seed = seed + 1;
    options.iterations = 5000;
    AnnealStats stats = anneal_partition(g, p, options);
    EXPECT_EQ(stats.cost_before, before);
    EXPECT_LE(stats.cost_after, before);
    EXPECT_EQ(sadm_cost(g, p), stats.cost_after);
    auto v = validate_partition(g, p);
    EXPECT_TRUE(v.ok) << v.reason;
    EXPECT_LE(p.parts.size(),
              static_cast<std::size_t>(
                  min_wavelengths(g.real_edge_count(), 6)));
  }
}

TEST(Anneal, RecoversMixedTriangles) {
  Graph g = triangle_forest(2);
  EdgePartition bad;
  bad.k = 3;
  bad.parts = {{0, 3, 1}, {2, 4, 5}};
  AnnealOptions options;
  options.iterations = 3000;
  AnnealStats stats = anneal_partition(g, bad, options);
  EXPECT_EQ(stats.cost_after, 6);
}

TEST(Anneal, EscapesWhereHillClimbingCanHelpFurther) {
  // On dense instances annealing (then polishing) should never be worse
  // than a single hill-climb from the same start.
  Rng rng(4);
  Graph g = random_gnm(24, 120, rng);
  EdgePartition hill = spant_euler(g, 8);
  EdgePartition annealed = hill;  // same starting point
  refine_partition(g, hill);
  AnnealOptions options;
  options.iterations = 30000;
  options.seed = 9;
  anneal_partition(g, annealed, options);
  refine_partition(g, annealed);  // final polish
  EXPECT_LE(sadm_cost(g, annealed), sadm_cost(g, hill) + 2);
}

TEST(Anneal, ZeroIterationsIsIdentity) {
  Rng rng(2);
  Graph g = random_gnm(10, 20, rng);
  EdgePartition p = spant_euler(g, 4);
  EdgePartition copy = p;
  AnnealOptions options;
  options.iterations = 0;
  AnnealStats stats = anneal_partition(g, p, options);
  EXPECT_EQ(p.parts, copy.parts);
  EXPECT_EQ(stats.cost_before, stats.cost_after);
  EXPECT_EQ(stats.accepted_moves, 0);
}

TEST(Anneal, SinglePartIsIdentity) {
  Graph g = complete_graph(4);
  EdgePartition p;
  p.k = 6;
  p.parts = {{0, 1, 2, 3, 4, 5}};
  AnnealStats stats = anneal_partition(g, p);
  EXPECT_EQ(stats.cost_before, 4);
  EXPECT_EQ(stats.cost_after, 4);
}

TEST(Anneal, DeterministicForFixedSeed) {
  Rng rng(6);
  Graph g = random_gnm(16, 40, rng);
  EdgePartition a = spant_euler(g, 4);
  EdgePartition b = a;
  AnnealOptions options;
  options.seed = 42;
  options.iterations = 2000;
  anneal_partition(g, a, options);
  anneal_partition(g, b, options);
  EXPECT_EQ(a.parts, b.parts);
}

TEST(Anneal, UphillMovesActuallyHappen) {
  Rng rng(8);
  Graph g = random_gnm(20, 80, rng);
  EdgePartition p = spant_euler(g, 8);
  AnnealOptions options;
  options.iterations = 10000;
  options.start_temperature = 3.0;
  AnnealStats stats = anneal_partition(g, p, options);
  EXPECT_GT(stats.accepted_uphill, 0);
  EXPECT_GT(stats.accepted_moves, stats.accepted_uphill);
}

TEST(Anneal, RejectsBadOptions) {
  Graph g = complete_graph(3);
  EdgePartition p;
  p.k = 3;
  p.parts = {{0, 1, 2}};
  AnnealOptions bad;
  bad.start_temperature = 0;
  EXPECT_THROW(anneal_partition(g, p, bad), CheckError);
  bad = {};
  bad.iterations = -1;
  EXPECT_THROW(anneal_partition(g, p, bad), CheckError);
}

}  // namespace
}  // namespace tgroom
