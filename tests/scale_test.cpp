// Big-graph hot path (DESIGN.md §16): per-component parallel SpanT_Euler
// bit-identity, streaming Euler walk-identity, component splitting /
// subgraph renumbering, the big-graph generators, arena peak tracking, and
// the n = 10^5 Proposition 2 property check.
#include <gtest/gtest.h>

#include <set>

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "algo/spanning_tree.hpp"
#include "algorithms/spant_euler.hpp"
#include "algorithms/workspace.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "partition/cover_transform.hpp"
#include "partition/edge_partition.hpp"
#include "service/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {
namespace {

// Two interleaved components: even nodes form one path, odd nodes another,
// so component node ids alternate — the adversarial case for the parallel
// merge (contiguous-component graphs cannot catch a wrong merge key).
Graph interleaved_two_paths(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v + 2 < n; ++v) g.add_edge(v, v + 2);
  return g;
}

// Three interleaved ring clusters by node-id stride, with chords.
Graph interleaved_rings(NodeId per_ring, int rings) {
  Graph g(per_ring * rings);
  for (int r = 0; r < rings; ++r) {
    for (NodeId i = 0; i < per_ring; ++i) {
      NodeId a = i * rings + r;
      NodeId b = ((i + 1) % per_ring) * rings + r;
      g.add_edge(a, b);
    }
    // A couple of chords per ring so branches and E_odd are non-trivial.
    g.add_edge(r, 4 * rings + r);
    g.add_edge(2 * rings + r, 7 * rings + r);
  }
  return g;
}

void expect_partitions_equal(const EdgePartition& a, const EdgePartition& b) {
  ASSERT_EQ(a.parts.size(), b.parts.size());
  for (std::size_t i = 0; i < a.parts.size(); ++i) {
    EXPECT_EQ(a.parts[i], b.parts[i]) << "part " << i;
  }
}

TEST(ParallelSpanTEuler, BitIdenticalAcrossWorkerCounts) {
  Rng rng(7);
  std::vector<Graph> graphs;
  graphs.push_back(interleaved_two_paths(25));
  graphs.push_back(interleaved_rings(10, 3));
  graphs.push_back(ring_cluster_graph(120, 6, 30, rng));
  graphs.push_back(random_gnm_big(80, 90, rng));  // several components
  Graph isolated(6);  // edgeless graph
  graphs.push_back(std::move(isolated));

  for (const Graph& g : graphs) {
    for (TreePolicy policy : {TreePolicy::kBfs, TreePolicy::kDfs}) {
      for (bool smart : {false, true}) {
        for (int k : {1, 4, 16}) {
          GroomingOptions options;
          options.tree_policy = policy;
          options.smart_branches = smart;
          EdgePartition sequential = spant_euler(g, k, options);
          for (std::size_t workers : {0u, 1u, 4u}) {
            ThreadPool pool(workers);
            GroomingWorkspace ws;
            EdgePartition parallel =
                spant_euler_parallel(g, k, options, &pool, &ws);
            SCOPED_TRACE(testing::Message()
                         << "n=" << g.node_count() << " m=" << g.edge_count()
                         << " policy=" << tree_policy_name(policy)
                         << " smart=" << smart << " k=" << k
                         << " workers=" << workers);
            expect_partitions_equal(sequential, parallel);
          }
        }
      }
    }
  }
}

TEST(ParallelSpanTEuler, IneligiblePolicyFallsBackToSequential) {
  Rng rng(11);
  Graph g = ring_cluster_graph(60, 3, 12, rng);
  for (TreePolicy policy :
       {TreePolicy::kRandom, TreePolicy::kMinMaxDegree}) {
    GroomingOptions options;
    options.tree_policy = policy;
    EdgePartition sequential = spant_euler(g, 4, options);
    ThreadPool pool(2);
    EdgePartition parallel = spant_euler_parallel(g, 4, options, &pool);
    expect_partitions_equal(sequential, parallel);
  }
}

TEST(ParallelSpanTEuler, RunAlgorithmPoolOverload) {
  Rng rng(3);
  Graph g = ring_cluster_graph(90, 3, 21, rng);
  GroomingOptions options;
  EdgePartition plain =
      run_algorithm(AlgorithmId::kSpanTEuler, g, 8, options);
  ThreadPool pool(2);
  EdgePartition pooled = run_algorithm(AlgorithmId::kSpanTEuler, g, 8,
                                       options, nullptr, &pool);
  expect_partitions_equal(plain, pooled);
}

TEST(StreamingEuler, WalksMatchMaterializedAndPeakIsLower) {
  Rng rng(5);
  // Disjoint cycles: every degree even, so the all-edges mask is Eulerian.
  Graph g = ring_cluster_graph(600, 12, 0, rng);
  CsrGraph csr(g);
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);

  MonotonicArena mat_arena;
  ArenaWalkList walks = euler_decomposition(csr, mask, mat_arena);

  MonotonicArena stream_arena;
  std::size_t next = 0;
  euler_decomposition_stream(
      csr, mask, stream_arena, [&](const ArenaWalk& walk) {
        ASSERT_LT(next, walks.size());
        const ArenaWalk& expected = walks[next++];
        ASSERT_EQ(walk.nodes.size(), expected.nodes.size());
        ASSERT_EQ(walk.edges.size(), expected.edges.size());
        for (std::size_t i = 0; i < walk.nodes.size(); ++i) {
          EXPECT_EQ(walk.nodes[i], expected.nodes[i]);
        }
        for (std::size_t i = 0; i < walk.edges.size(); ++i) {
          EXPECT_EQ(walk.edges[i], expected.edges[i]);
        }
      });
  EXPECT_EQ(next, walks.size());
  // One reused buffer vs 12 retained walks: the streaming peak must be
  // strictly below the materializing peak on a multi-walk mask.
  EXPECT_LT(stream_arena.peak_bytes(), mat_arena.peak_bytes());
}

TEST(StreamingEuler, OpenWalkAndEmptyMask) {
  Graph g = path_graph(5);
  CsrGraph csr(g);
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);
  MonotonicArena arena;
  int count = 0;
  euler_decomposition_stream(csr, mask, arena,
                             [&count](const ArenaWalk& walk) {
                               ++count;
                               EXPECT_EQ(walk.edges.size(), 4u);
                             });
  EXPECT_EQ(count, 1);

  std::fill(mask.begin(), mask.end(), 0);
  euler_decomposition_stream(csr, mask, arena,
                             [](const ArenaWalk&) { FAIL(); });
}

TEST(ComponentSplit, GroupsAndRenumbersRankPreserving) {
  Graph g = interleaved_two_paths(9);  // evens 0-2-4-6-8, odds 1-3-5-7
  CsrGraph csr(g);
  Components comp = connected_components(csr);
  ASSERT_EQ(comp.count, 2);
  ComponentSplit split = split_components(csr, comp);

  auto nodes0 = split.component_nodes(0);
  ASSERT_EQ(nodes0.size(), 5u);
  for (std::size_t i = 0; i < nodes0.size(); ++i) {
    EXPECT_EQ(nodes0[i], static_cast<NodeId>(2 * i));
    EXPECT_EQ(split.local_node[static_cast<std::size_t>(nodes0[i])],
              static_cast<NodeId>(i));
  }
  auto edges1 = split.component_edges(1);
  ASSERT_EQ(edges1.size(), 3u);

  // Rebuild component 1 and check the rank-preservation property the
  // parallel merge relies on: the local spanning forest is the global
  // forest's component-1 edges, renumbered by rank.
  CsrGraph local;
  local.rebuild_subgraph(csr, split.component_nodes(1), edges1,
                         split.local_node);
  EXPECT_EQ(local.node_count(), 4);
  EXPECT_EQ(local.edge_count(), 3);
  std::vector<EdgeId> local_tree = spanning_forest(local, TreePolicy::kBfs);
  std::vector<EdgeId> global_tree = spanning_forest(csr, TreePolicy::kBfs);
  std::vector<EdgeId> global_in_comp;
  std::set<EdgeId> comp_edges(edges1.begin(), edges1.end());
  for (EdgeId e : global_tree) {
    if (comp_edges.count(e)) global_in_comp.push_back(e);
  }
  ASSERT_EQ(local_tree.size(), global_in_comp.size());
  for (std::size_t i = 0; i < local_tree.size(); ++i) {
    EXPECT_EQ(edges1[static_cast<std::size_t>(local_tree[i])],
              global_in_comp[i]);
  }
}

TEST(BigGenerators, GnmBigMatchesSetBasedSparsePath) {
  // Same rng state -> identical draw sequence -> identical graph; only
  // the dedup structure differs.
  Rng rng_a(42);
  Rng rng_b(42);
  Graph a = random_gnm(300, 500, rng_a);
  Graph b = random_gnm_big(300, 500, rng_b);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(BigGenerators, RingClusterShape) {
  Rng rng(9);
  Graph g = ring_cluster_graph(1003, 7, 50, rng);
  EXPECT_EQ(g.node_count(), 1003);
  EXPECT_EQ(g.edge_count(), 1003 + 50);
  EXPECT_EQ(connected_components(g).count, 7);
  // Simple graph: no duplicate pairs, no self-loops.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : g.edges()) {
    NodeId u = std::min(e.u, e.v);
    NodeId v = std::max(e.u, e.v);
    EXPECT_NE(u, v);
    EXPECT_TRUE(seen.insert({u, v}).second);
  }
  EXPECT_THROW(ring_cluster_graph(8, 3, 0, rng), CheckError);
  EXPECT_THROW(ring_cluster_graph(9, 3, 1, rng), CheckError);  // no free pair
}

TEST(BigGenerators, EdgeCountGuardRejectsOverflowingReserve) {
  Graph g(5);
  EXPECT_THROW(g.reserve_edges(kMaxEdgeCount + 1), CheckError);
}

TEST(ArenaPeak, TracksHighWaterAcrossResets) {
  MonotonicArena arena;
  EXPECT_EQ(arena.peak_bytes(), 0u);
  arena.allocate(1000, 8);
  EXPECT_EQ(arena.peak_bytes(), 1000u);
  arena.reset();
  arena.allocate(64, 8);
  EXPECT_EQ(arena.peak_bytes(), 1000u);  // high-water survives the rewind
  arena.allocate(2000, 8);
  EXPECT_EQ(arena.peak_bytes(), 2064u);
}

TEST(ArenaPeak, ExportedThroughServiceMetricsJson) {
  ServiceMetrics metrics;
  metrics.observe_arena_peak(123);
  metrics.observe_arena_peak(77);  // max wins
  std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"arena\":{\"peak_bytes\":123}"), std::string::npos)
      << json;
}

TEST(SpanTEulerTraceOptions, WantCoverFalseStillReportsCoverSize) {
  Rng rng(13);
  Graph g = ring_cluster_graph(90, 3, 15, rng);
  SpanTEulerTrace full;
  EdgePartition p1 = spant_euler(g, 4, {}, &full);
  SpanTEulerTrace slim;
  slim.want_cover = false;
  EdgePartition p2 = spant_euler(g, 4, {}, &slim);
  EXPECT_EQ(full.cover_size, full.cover.size());
  EXPECT_EQ(slim.cover_size, full.cover_size);
  EXPECT_TRUE(slim.cover.empty());
  expect_partitions_equal(p1, p2);
}

// The n = 10^5 property check: the Theorem 5 / Proposition 2 SADM bound
// and the minimum wavelength count hold on big seeded instances, for both
// the sequential and the parallel path.
TEST(ScaleProperty, PlanWithinProp2BoundAtN100k) {
  const NodeId n = 100000;
  for (std::uint64_t seed : {1ull, 2ull}) {
    Rng rng(seed);
    Graph g = seed % 2 == 1 ? ring_cluster_graph(n, 100, n / 2, rng)
                            : random_gnm_big(n, 2 * n, rng);
    const int k = 16;
    SpanTEulerTrace trace;
    trace.want_cover = false;
    GroomingWorkspace ws;
    EdgePartition p = spant_euler(g, k, {}, &trace, &ws);
    auto v = validate_partition(g, p);
    ASSERT_TRUE(v.ok) << v.reason;
    EXPECT_TRUE(uses_min_wavelengths(g, p));
    long long bound =
        spant_euler_cost_bound(g.edge_count(), k, trace.g2_component_count);
    EXPECT_LE(sadm_cost(g, p), bound) << "seed " << seed;
    EXPECT_GT(ws.arena.peak_bytes(), 0u);

    ThreadPool pool(2);
    EdgePartition parallel = spant_euler_parallel(g, k, {}, &pool);
    expect_partitions_equal(p, parallel);
  }
}

}  // namespace
}  // namespace tgroom
