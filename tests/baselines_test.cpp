#include <gtest/gtest.h>

#include "algorithms/brauner.hpp"
#include "algorithms/goldschmidt.hpp"
#include "algorithms/wanggu.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "graph/properties.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {
namespace {

void expect_valid(const Graph& g, const EdgePartition& p) {
  auto v = validate_partition(g, p);
  EXPECT_TRUE(v.ok) << v.reason;
}

class BaselineP
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {
 protected:
  Graph make_graph() const {
    auto [seed, dense, n] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    return random_dense_ratio(static_cast<NodeId>(n), dense, rng);
  }
};

TEST_P(BaselineP, GoldschmidtValidMinWavelengths) {
  Graph g = make_graph();
  for (int k : {3, 8, 16}) {
    EdgePartition p = goldschmidt_spanning_tree(g, k);
    expect_valid(g, p);
    EXPECT_TRUE(uses_min_wavelengths(g, p)) << "k=" << k;
  }
}

TEST_P(BaselineP, BraunerValidMinWavelengths) {
  Graph g = make_graph();
  for (int k : {3, 8, 16}) {
    EdgePartition p = brauner_euler(g, k);
    expect_valid(g, p);
    EXPECT_TRUE(uses_min_wavelengths(g, p)) << "k=" << k;
  }
}

TEST_P(BaselineP, WangGuValidMinWavelengths) {
  Graph g = make_graph();
  for (int k : {3, 8, 16}) {
    EdgePartition p = wanggu_skeleton_cover(g, k);
    expect_valid(g, p);
    EXPECT_TRUE(uses_min_wavelengths(g, p)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, BaselineP,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.3, 0.5, 0.8),
                       ::testing::Values(20, 36)));

TEST(Brauner, EulerianGraphHasNoVirtualEdges) {
  Graph g = cycle_graph(10);
  BraunerTrace trace;
  EdgePartition p = brauner_euler(g, 4, {}, &trace);
  expect_valid(g, p);
  EXPECT_EQ(trace.virtual_edges, 0);
  EXPECT_EQ(trace.segments, 1);
}

TEST(Brauner, OpenPathGraphNeedsNoVirtualEdges) {
  Graph g = path_graph(9);  // exactly two odd nodes
  BraunerTrace trace;
  EdgePartition p = brauner_euler(g, 3, {}, &trace);
  expect_valid(g, p);
  EXPECT_EQ(trace.virtual_edges, 0);
}

TEST(Brauner, StarNeedsManyVirtualEdges) {
  Graph g = star_graph(9);  // 8 leaves odd + hub even(8): 8 odd nodes
  BraunerTrace trace;
  EdgePartition p = brauner_euler(g, 4, {}, &trace);
  expect_valid(g, p);
  // 8 odd nodes: 2 stay path ends, 6 are paired -> 3 virtual edges.
  EXPECT_EQ(trace.virtual_edges, 3);
  EXPECT_EQ(trace.segments, 4);
}

TEST(Brauner, DisconnectedComponentsChained) {
  Graph g(9);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // triangle (even)
  g.add_edge(4, 5);  // lone edge (two odd)
  g.add_edge(6, 7);
  g.add_edge(7, 8);  // path (two odd)
  BraunerTrace trace;
  EdgePartition p = brauner_euler(g, 3, {}, &trace);
  expect_valid(g, p);
  EXPECT_EQ(trace.virtual_edges, 2);  // two chaining edges
}

TEST(Goldschmidt, TreeInputGivesSubtreeParts) {
  Graph g = caterpillar_graph(6, 1);  // 11 edges
  EdgePartition p = goldschmidt_spanning_tree(g, 4);
  expect_valid(g, p);
  // Parts of a tree have >= k+1 nodes each; with contiguous subtree cutting
  // the first two parts have exactly 5 nodes.
  EXPECT_LE(sadm_cost(g, p), 11 + 3 + 2);
}

TEST(Goldschmidt, DeterministicAcrossCalls) {
  Rng rng(5);
  Graph g = random_gnm(20, 50, rng);
  EdgePartition a = goldschmidt_spanning_tree(g, 8);
  EdgePartition b = goldschmidt_spanning_tree(g, 8);
  EXPECT_EQ(a.parts, b.parts);
}

TEST(WangGu, ProducesRealSkeletonCover) {
  Rng rng(6);
  Graph g = random_gnm(24, 100, rng);
  WangGuTrace trace;
  EdgePartition p = wanggu_skeleton_cover(g, 8, {}, &trace);
  expect_valid(g, p);
  EXPECT_TRUE(validate_cover(g, trace.cover));
  EXPECT_TRUE(cover_spans_all_edges(g, trace.cover));
}

TEST(WangGu, PathGraphIsOneSkeleton) {
  Graph g = path_graph(10);
  WangGuTrace trace;
  EdgePartition p = wanggu_skeleton_cover(g, 4, {}, &trace);
  expect_valid(g, p);
  EXPECT_EQ(trace.cover.size(), 1u);
}

TEST(WangGu, StarIsOneSkeleton) {
  Graph g = star_graph(10);
  WangGuTrace trace;
  wanggu_skeleton_cover(g, 4, {}, &trace);
  EXPECT_EQ(trace.cover.size(), 1u);  // 2-edge backbone + 7 branches
}

TEST(Baselines, EmptyGraphsAreFine) {
  Graph g(4);
  EXPECT_TRUE(goldschmidt_spanning_tree(g, 3).parts.empty());
  EXPECT_TRUE(brauner_euler(g, 3).parts.empty());
  EXPECT_TRUE(wanggu_skeleton_cover(g, 3).parts.empty());
}

TEST(Baselines, SparseVsDenseCharacteristics) {
  // The paper's §5 observation, as a coarse sanity check over several
  // seeds: tree-based Algo 1 beats Euler-based Algo 2 on trees (lots of
  // odd nodes), and Algo 2 beats Algo 1 on Eulerian dense graphs.
  long long tree_algo1 = 0, tree_algo2 = 0;
  long long dense_algo1 = 0, dense_algo2 = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Graph sparse = caterpillar_graph(12, 2);  // a tree
    tree_algo1 += sadm_cost(sparse, goldschmidt_spanning_tree(sparse, 4));
    tree_algo2 += sadm_cost(sparse, brauner_euler(sparse, 4));

    // d=0.8 clamps to the complete graph where both do similarly; d=0.7
    // (m ~ 441 of 630) is the dense-but-not-complete regime the paper
    // plots.
    Rng rng(seed);
    Graph dense = random_dense_ratio(36, 0.7, rng);
    dense_algo1 += sadm_cost(dense, goldschmidt_spanning_tree(dense, 4));
    dense_algo2 += sadm_cost(dense, brauner_euler(dense, 4));
  }
  EXPECT_LE(tree_algo1, tree_algo2);
  EXPECT_LE(dense_algo2, dense_algo1);
}

}  // namespace
}  // namespace tgroom
