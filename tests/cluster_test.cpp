// Tests of the sharded cluster front-end (src/cluster/): the routing
// function is pinned against golden shard assignments so the key→shard
// mapping can never silently move held plans between stores, the id
// splice helpers are exercised over the tricky JSON shapes, and a real
// in-process cluster — router + two single-member shard groups, all on
// loopback sockets — serves a 500-request mixed workload whose responses
// must be byte-identical to replaying each shard's subsequence against a
// plain unsharded node (the router is a transport; it may not change a
// single payload byte).
#include <gtest/gtest.h>

#include "cluster/cluster_map.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "grooming/demand.hpp"

namespace tgroom::cluster {
namespace {

// ---------------------------------------------------------------- map

TEST(ClusterMap, ParsesGroupsAndReplicas) {
  ClusterMap map;
  std::string error;
  ASSERT_TRUE(parse_cluster_map(
      "127.0.0.1:7001,127.0.0.1:7002;10.0.0.5:7010", map, error))
      << error;
  ASSERT_EQ(map.size(), 2u);
  ASSERT_EQ(map.shards[0].members.size(), 2u);
  EXPECT_EQ(map.shards[0].members[0].host, "127.0.0.1");
  EXPECT_EQ(map.shards[0].members[0].port, 7001);
  EXPECT_EQ(map.shards[0].members[1].port, 7002);
  ASSERT_EQ(map.shards[1].members.size(), 1u);
  EXPECT_EQ(map.shards[1].members[0].host, "10.0.0.5");
  EXPECT_EQ(map.shards[1].members[0].port, 7010);
}

TEST(ClusterMap, RejectsMalformedSpecs) {
  ClusterMap map;
  std::string error;
  EXPECT_FALSE(parse_cluster_map("", map, error));
  EXPECT_FALSE(parse_cluster_map("127.0.0.1", map, error));
  EXPECT_FALSE(parse_cluster_map("127.0.0.1:x", map, error));
  EXPECT_FALSE(parse_cluster_map("127.0.0.1:0", map, error));
  EXPECT_FALSE(parse_cluster_map("127.0.0.1:70000", map, error));
  EXPECT_FALSE(parse_cluster_map("127.0.0.1:7001;;127.0.0.1:7002", map,
                                 error));
  EXPECT_FALSE(parse_cluster_map("127.0.0.1:7001,,127.0.0.1:7002", map,
                                 error));
  // The same address twice — whether inside one group or across two —
  // would route distinct key ranges into one store.
  EXPECT_FALSE(
      parse_cluster_map("127.0.0.1:7001,127.0.0.1:7001", map, error));
  EXPECT_FALSE(
      parse_cluster_map("127.0.0.1:7001;127.0.0.1:7001", map, error));
}

// ---------------------------------------------------------------- routing

// The key→shard mapping is part of the cluster's persistent contract: a
// held plan lives on the shard its key routed to, so these assignments
// may never change across builds.  Golden values pinned for shard counts
// 1, 2, and 8.
TEST(Routing, PinnedShardAssignments) {
  const std::uint64_t keys[] = {0,    1,    2,         7,
                                42,   77,   1000,      123456789ULL,
                                0xffffffffffffffffULL};
  for (const std::uint64_t key : keys) {
    EXPECT_EQ(shard_for_key(key, 1), 0u) << key;
  }
  const std::size_t expect2[] = {1, 1, 1, 0, 1, 0, 0, 0, 1};
  const std::size_t expect8[] = {7, 4, 4, 3, 5, 3, 1, 1, 7};
  for (std::size_t i = 0; i < std::size(keys); ++i) {
    EXPECT_EQ(shard_for_key(keys[i], 2), expect2[i]) << keys[i];
    EXPECT_EQ(shard_for_key(keys[i], 8), expect8[i]) << keys[i];
  }
}

TEST(Routing, SpreadsSequentialKeysAcrossAllShards) {
  // Sequential small-integer keys (typical client route_keys) must not
  // clump: every shard of 8 sees roughly 1/8 of 10k keys.
  int counts[8] = {0};
  for (std::uint64_t key = 0; key < 10000; ++key) {
    ++counts[shard_for_key(key, 8)];
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_GT(counts[i], 1000) << "shard " << i;
    EXPECT_LT(counts[i], 1500) << "shard " << i;
  }
}

TEST(Routing, PairsRouteKeyIsOrderSensitiveButStable) {
  const std::vector<DemandPair> a = {{1, 2}, {3, 4}};
  const std::vector<DemandPair> b = {{3, 4}, {1, 2}};
  EXPECT_EQ(pairs_route_key(a), pairs_route_key(a));
  EXPECT_NE(pairs_route_key(a), pairs_route_key(b));
  EXPECT_NE(pairs_route_key(a), pairs_route_key({}));
}

// ---------------------------------------------------------------- splice

TEST(IdSplice, StripsLeadingMiddleAndTrailingId) {
  EXPECT_EQ(strip_top_level_id(R"({"id":7,"op":"stats"})"),
            R"({"op":"stats"})");
  EXPECT_EQ(strip_top_level_id(R"({"op":"stats","id":7,"k":4})"),
            R"({"op":"stats","k":4})");
  EXPECT_EQ(strip_top_level_id(R"({"op":"stats","id":7})"),
            R"({"op":"stats"})");
  EXPECT_EQ(strip_top_level_id(R"({"id":7})"), R"({})");
  EXPECT_EQ(strip_top_level_id(R"({"id":-42,"op":"x"})"), R"({"op":"x"})");
}

TEST(IdSplice, LeavesNestedAndAbsentIdsAlone) {
  EXPECT_EQ(strip_top_level_id(R"({"op":"stats"})"), R"({"op":"stats"})");
  // "id" inside a nested object is a different member entirely.
  EXPECT_EQ(strip_top_level_id(R"({"plan":{"id":9},"op":"x"})"),
            R"({"plan":{"id":9},"op":"x"})");
  // "id" inside an array of objects likewise.
  EXPECT_EQ(strip_top_level_id(R"({"a":[{"id":1}],"op":"x"})"),
            R"({"a":[{"id":1}],"op":"x"})");
  // ...and inside a string value, even an escaped one.
  EXPECT_EQ(strip_top_level_id(R"({"m":"has \"id\":1 inside","op":"x"})"),
            R"({"m":"has \"id\":1 inside","op":"x"})");
}

TEST(IdSplice, ComposeInjectsInternalId) {
  EXPECT_EQ(compose_with_id(R"({"op":"stats"})", 12),
            R"({"id":12,"op":"stats"})");
  EXPECT_EQ(compose_with_id(R"({})", 3), R"({"id":3})");
}

TEST(IdSplice, RestoreReplacesThePrefixOnly) {
  std::string out;
  ASSERT_TRUE(restore_response_id(R"({"id":981,"ok":true,"op":"groom"})",
                                  true, 7, out));
  EXPECT_EQ(out, R"({"id":7,"ok":true,"op":"groom"})");
  ASSERT_TRUE(restore_response_id(R"({"id":981,"ok":true})", false, 0, out));
  EXPECT_EQ(out, R"({"id":null,"ok":true})");
  ASSERT_TRUE(restore_response_id(R"({"id":null,"ok":true})", true, -5, out));
  EXPECT_EQ(out, R"({"id":-5,"ok":true})");
  EXPECT_FALSE(restore_response_id(R"({"ok":true})", true, 1, out));
}

TEST(IdSplice, RoundTripPreservesEveryOtherByte) {
  const std::string line =
      R"({"op":"groom","id":33,"graph":{"n":3,"edges":[[0,1],[1,2]]},"k":4})";
  const std::string stripped = strip_top_level_id(line);
  EXPECT_EQ(stripped.find("\"id\""), std::string::npos);
  const std::string forwarded = compose_with_id(stripped, 555);
  EXPECT_EQ(forwarded.substr(0, 9), "{\"id\":555");
  // Everything but the id member survives both directions.
  EXPECT_NE(forwarded.find(R"("graph":{"n":3,"edges":[[0,1],[1,2]]})"),
            std::string::npos);
}

}  // namespace
}  // namespace tgroom::cluster

// ------------------------------------------------------------------------
// In-process cluster parity: router + 2 shard nodes on loopback sockets.
// Linux-only, like the event loop front-end itself.
#if defined(__linux__)

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <sstream>
#include <thread>

#include "cluster/router.hpp"
#include "service/event_loop.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/json.hpp"

namespace tgroom::cluster {
namespace {

int connect_port(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void send_str(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads exactly one '\n'-terminated line (lockstep client).
std::string recv_line(int fd) {
  std::string line;
  char c;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    EXPECT_GT(n, 0) << "EOF mid-line after: " << line;
    if (n <= 0) return line;
    if (c == '\n') return line;
    line.push_back(c);
  }
}

/// A grooming node on an ephemeral port, serving on its own thread.
struct ShardNode {
  GroomingService service;
  EventLoopServer server;
  std::ostringstream log;
  std::thread thread;

  explicit ShardNode(const ServiceConfig& config)
      : service(config), server(service, EventLoopConfig{}) {
    EXPECT_TRUE(server.valid()) << server.error();
    thread = std::thread([this] { server.run(log); });
  }
  ~ShardNode() { stop(); }

  int port() const { return server.port(); }
  void stop() {
    if (!thread.joinable()) return;
    const int fd = connect_port(port());
    send_str(fd, "{\"op\":\"shutdown\"}\n");
    recv_line(fd);
    ::close(fd);
    thread.join();
  }
};

ServiceConfig shard_config(int shard_index, int shard_count) {
  ServiceConfig config;
  config.workers = 0;  // inline, in-order: deterministic
  config.cache_capacity = 64;
  config.metrics_on_exit = false;
  if (shard_count > 0) {
    config.node_id = "s" + std::to_string(shard_index);
    config.shard_index = shard_index;
    config.shard_count = shard_count;
  }
  return config;
}

/// The deterministic 500-request mixed workload.  Every request line is
/// generated up front; holds/provisions/releases thread plan ids through
/// a per-route_key table filled in as responses arrive.
struct WorkloadStep {
  std::string line;       // complete request line (no newline)
  bool needs_plan_id;     // line contains the placeholder "%PLAN%"
  std::int64_t route_key; // the hold this step references (plan ops)
};

std::string small_graph_json(int variant) {
  // A ring of 4..11 nodes with a chord that varies by step: distinct
  // fingerprints, trivial groom cost.
  const int n = 4 + variant % 8;
  JsonWriter w;
  w.begin_object();
  w.kv("n", static_cast<long long>(n));
  w.key("edges").begin_array();
  for (int i = 0; i < n; ++i) {
    w.begin_array();
    w.value(static_cast<long long>(i));
    w.value(static_cast<long long>((i + 1) % n));
    w.end_array();
  }
  if (variant % 3 == 0 && n > 4) {
    w.begin_array();
    w.value(0LL);
    w.value(static_cast<long long>(n / 2));
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::vector<WorkloadStep> make_workload(int count) {
  std::vector<WorkloadStep> steps;
  std::vector<std::int64_t> held;  // route_keys with a live held plan
  for (int i = 0; i < count; ++i) {
    WorkloadStep step;
    step.needs_plan_id = false;
    step.route_key = 0;
    const int kind = i % 5;
    if (kind == 3 && !held.empty()) {
      // Provision two more pairs onto a held plan, pinned by route_key.
      const std::int64_t rk = held[static_cast<std::size_t>(i / 5) %
                                   held.size()];
      step.line = "{\"op\":\"provision\",\"id\":" + std::to_string(i) +
                  ",\"route_key\":" + std::to_string(rk) +
                  ",\"plan_id\":%PLAN%,\"add\":[[0," +
                  std::to_string(2 + i % 2) + "]]}";
      step.needs_plan_id = true;
      step.route_key = rk;
    } else if (kind == 4 && held.size() > 3) {
      // Release the whole oldest held plan.
      const std::int64_t rk = held.front();
      held.erase(held.begin());
      step.line = "{\"op\":\"release\",\"id\":" + std::to_string(i) +
                  ",\"route_key\":" + std::to_string(rk) +
                  ",\"plan_id\":%PLAN%,\"all\":true}";
      step.needs_plan_id = true;
      step.route_key = rk;
    } else if (kind == 2) {
      // Hold a plan under an explicit route_key.
      const std::int64_t rk = 1000 + i;
      held.push_back(rk);
      step.line = "{\"op\":\"groom\",\"id\":" + std::to_string(i) +
                  ",\"route_key\":" + std::to_string(rk) +
                  ",\"hold\":true,\"graph\":" + small_graph_json(i) +
                  ",\"k\":4}";
      step.route_key = rk;
    } else {
      // Stateless groom, routed by fingerprint.
      step.line = "{\"op\":\"groom\",\"id\":" + std::to_string(i) +
                  ",\"graph\":" + small_graph_json(i) + ",\"k\":4}";
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

std::int64_t extract_plan_id(const std::string& response) {
  const std::size_t at = response.find("\"plan_id\":");
  EXPECT_NE(at, std::string::npos) << response;
  if (at == std::string::npos) return -1;
  return std::stoll(response.substr(at + 10));
}

/// Runs the workload in lockstep against `fd`, appending one response
/// line per step.  `plan_ids` maps route_key → plan_id, filled from hold
/// responses (shared across the router run and the per-shard replays so
/// replayed lines are byte-identical to forwarded ones).
void run_lockstep_into(int fd, const std::vector<WorkloadStep>& steps,
                       std::map<std::int64_t, std::int64_t>& plan_ids,
                       std::vector<std::string>& responses) {
  for (const WorkloadStep& step : steps) {
    std::string line = step.line;
    if (step.needs_plan_id) {
      const std::size_t at = line.find("%PLAN%");
      ASSERT_NE(at, std::string::npos);
      line.replace(at, 6, std::to_string(plan_ids.at(step.route_key)));
    }
    send_str(fd, line + "\n");
    std::string response = recv_line(fd);
    if (line.find("\"hold\":true") != std::string::npos &&
        response.find("\"ok\":true") != std::string::npos) {
      plan_ids[step.route_key] = extract_plan_id(response);
    }
    responses.push_back(std::move(response));
  }
}

/// The shard the router will pick for one workload line (recomputed in
/// the test so the reference replay splits the stream the same way).
int expected_shard(const std::string& line, const ClusterRouter& router) {
  RequestParse parsed = parse_request(line);
  EXPECT_TRUE(parsed.request.has_value()) << line;
  if (!parsed.request.has_value()) return -1;
  std::string error;
  const int shard = router.shard_for_request(*parsed.request, error);
  EXPECT_GE(shard, 0) << error << " for " << line;
  return shard;
}

TEST(ClusterParity, RoutedMixedWorkloadMatchesPerShardReplay) {
  constexpr int kShards = 2;
  constexpr int kRequests = 500;

  // --- the sharded cluster: two single-member groups plus the router.
  std::vector<std::unique_ptr<ShardNode>> nodes;
  for (std::size_t s = 0; s < kShards; ++s) {
    nodes.push_back(std::make_unique<ShardNode>(
        shard_config(static_cast<int>(s), kShards)));
  }
  RouterConfig router_config;
  for (std::size_t s = 0; s < kShards; ++s) {
    ShardSpec spec;
    spec.members.push_back(BackendAddress{"127.0.0.1", nodes[s]->port()});
    router_config.map.shards.push_back(std::move(spec));
  }
  router_config.workers = 2;
  router_config.metrics_on_exit = false;
  GroomingService::clear_stop();
  ClusterRouter router(router_config);
  std::ostringstream router_log;
  std::string error;
  ASSERT_TRUE(router.start(router_log, error)) << error;
  EventLoopServer front(router, EventLoopConfig{});
  ASSERT_TRUE(front.valid()) << front.error();
  std::thread front_thread([&] { front.run(router_log); });

  const std::vector<WorkloadStep> steps = make_workload(kRequests);
  std::map<std::int64_t, std::int64_t> plan_ids;
  std::vector<std::string> routed;
  {
    const int fd = connect_port(front.port());
    run_lockstep_into(fd, steps, plan_ids, routed);
    send_str(fd, "{\"op\":\"shutdown\"}\n");
    recv_line(fd);
    ::close(fd);
  }
  front_thread.join();  // shard nodes are shut down by the router's drain
  for (auto& node : nodes) {
    if (node->thread.joinable()) node->thread.join();
  }
  ASSERT_EQ(routed.size(), steps.size());
  for (const std::string& response : routed) {
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  }

  // --- split the stream by the router's own routing decision.
  std::vector<std::vector<std::size_t>> by_shard(kShards);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    std::string line = steps[i].line;
    if (steps[i].needs_plan_id) {
      const std::size_t at = line.find("%PLAN%");
      ASSERT_NE(at, std::string::npos);
      line.replace(at, 6, std::to_string(plan_ids.at(steps[i].route_key)));
    }
    const int shard = expected_shard(line, router);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, kShards);
    by_shard[static_cast<std::size_t>(shard)].push_back(i);
  }
  // Both shards must have actually participated for this to test
  // anything.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(by_shard[s].size(), 100u) << "lopsided split, shard " << s;
  }

  // --- replay each shard's subsequence against a plain unsharded node;
  // responses must match the routed run byte for byte.
  for (std::size_t s = 0; s < kShards; ++s) {
    ShardNode reference(shard_config(0, 0));
    const int fd = connect_port(reference.port());
    std::vector<WorkloadStep> subset;
    for (const std::size_t i : by_shard[s]) subset.push_back(steps[i]);
    std::map<std::int64_t, std::int64_t> replay_plan_ids = plan_ids;
    std::vector<std::string> replayed;
    run_lockstep_into(fd, subset, replay_plan_ids, replayed);
    ::close(fd);
    ASSERT_EQ(replayed.size(), by_shard[s].size());
    for (std::size_t j = 0; j < replayed.size(); ++j) {
      EXPECT_EQ(replayed[j], routed[by_shard[s][j]])
          << "shard " << s << " line " << by_shard[s][j];
    }
  }
}

TEST(ClusterRouterOps, HealthStatsAndErrorsEndToEnd) {
  ShardNode node(shard_config(0, 1));
  RouterConfig router_config;
  ShardSpec spec;
  spec.members.push_back(BackendAddress{"127.0.0.1", node.port()});
  router_config.map.shards.push_back(std::move(spec));
  router_config.workers = 1;
  router_config.metrics_on_exit = false;
  GroomingService::clear_stop();
  ClusterRouter router(router_config);
  std::ostringstream log;
  std::string error;
  ASSERT_TRUE(router.start(log, error)) << error;
  EventLoopServer front(router, EventLoopConfig{});
  ASSERT_TRUE(front.valid()) << front.error();
  std::thread front_thread([&] { front.run(log); });

  const int fd = connect_port(front.port());
  send_str(fd, "{\"op\":\"health\",\"id\":1}\n");
  std::string health = recv_line(fd);
  EXPECT_NE(health.find("\"role\":\"router\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"shard_count\":1"), std::string::npos) << health;

  send_str(fd, "{\"op\":\"stats\",\"id\":2}\n");
  std::string stats = recv_line(fd);
  EXPECT_NE(stats.find("\"role\":\"router\""), std::string::npos) << stats;
  // The merged document embeds the shard's own stats response, re-id'd
  // to null.
  EXPECT_NE(stats.find("\"response\":{\"id\":null,\"ok\":true,\"op\":\"stats\""),
            std::string::npos)
      << stats;

  // A replication op is not routable.
  send_str(fd, "{\"op\":\"repl_snapshot\",\"id\":3}\n");
  std::string repl = recv_line(fd);
  EXPECT_NE(repl.find("\"error\":\"bad_request\""), std::string::npos)
      << repl;

  // One-shard maps accept held-plan ops without a route_key...
  send_str(fd,
           "{\"op\":\"groom\",\"id\":4,\"hold\":true,"
           "\"graph\":{\"n\":3,\"edges\":[[0,1],[1,2]]},\"k\":4}\n");
  std::string hold = recv_line(fd);
  EXPECT_NE(hold.find("\"plan_id\":"), std::string::npos) << hold;
  send_str(fd, "{\"op\":\"provision\",\"id\":5,\"plan_id\":1,"
               "\"add\":[[0,2]]}\n");
  std::string provision = recv_line(fd);
  EXPECT_NE(provision.find("\"ok\":true"), std::string::npos) << provision;

  send_str(fd, "{\"op\":\"shutdown\",\"id\":6}\n");
  recv_line(fd);
  ::close(fd);
  front_thread.join();
  if (node.thread.joinable()) node.thread.join();
}

TEST(ClusterRouterOps, MultiShardHeldPlanOpWithoutRouteKeyIsRejected) {
  // Pure routing-layer check, no sockets: two shards, a plan_id op with
  // no route_key cannot name its owner.
  RouterConfig config;
  for (int s = 0; s < 2; ++s) {
    ShardSpec spec;
    spec.members.push_back(BackendAddress{"127.0.0.1", 7001 + s});
    config.map.shards.push_back(std::move(spec));
  }
  ClusterRouter router(config);
  RequestParse parsed = parse_request(
      R"({"op":"provision","plan_id":3,"add":[[0,1]]})");
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error;
  std::string error;
  EXPECT_EQ(router.shard_for_request(*parsed.request, error), -1);
  EXPECT_NE(error.find("route_key"), std::string::npos) << error;

  // With a route_key it routes, and consistently with shard_for_key.
  parsed = parse_request(
      R"({"op":"provision","plan_id":3,"route_key":77,"add":[[0,1]]})");
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error;
  EXPECT_EQ(router.shard_for_request(*parsed.request, error),
            static_cast<int>(shard_for_key(77, 2)));
}

}  // namespace
}  // namespace tgroom::cluster

#else  // !__linux__

TEST(ClusterParity, SkippedOnNonLinux) { GTEST_SKIP(); }

#endif
