// Golden-value regression pins: every algorithm on a fixed seed must keep
// producing byte-identical decisions across refactorings.  These values
// were recorded from the initial verified implementation; a change here
// means an intentional algorithmic change (update the constants and note
// it in EXPERIMENTS.md) or an accidental nondeterminism (fix it).
#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"

namespace tgroom {
namespace {

struct Golden {
  AlgorithmId id;
  int k;
  long long sadms;
};

TEST(Regression, DenseRatioWorkloadGoldenValues) {
  Rng rng(2026);
  Graph g = random_dense_ratio(36, 0.5, rng);
  ASSERT_EQ(g.edge_count(), 216);

  const Golden golden[] = {
      {AlgorithmId::kGoldschmidt, 4, 268},
      {AlgorithmId::kGoldschmidt, 16, 191},
      {AlgorithmId::kBrauner, 4, 274},
      {AlgorithmId::kBrauner, 16, 211},
      {AlgorithmId::kWangGuIcc06, 4, 272},
      {AlgorithmId::kWangGuIcc06, 16, 193},
      {AlgorithmId::kSpanTEuler, 4, 266},
      {AlgorithmId::kSpanTEuler, 16, 199},
      {AlgorithmId::kCliquePack, 4, 250},
      {AlgorithmId::kCliquePack, 16, 162},
  };
  for (const Golden& entry : golden) {
    EdgePartition p = run_algorithm(entry.id, g, entry.k);
    EXPECT_EQ(sadm_cost(g, p), entry.sadms)
        << algorithm_name(entry.id) << " k=" << entry.k;
  }
}

TEST(Regression, RegularWorkloadGoldenValues) {
  {
    Rng rng(99);
    Graph g = random_regular(36, 7, rng);
    EXPECT_EQ(
        sadm_cost(g, run_algorithm(AlgorithmId::kRegularEuler, g, 4)), 157);
    EXPECT_EQ(
        sadm_cost(g, run_algorithm(AlgorithmId::kRegularEuler, g, 16)), 122);
  }
  {
    Rng rng(99);
    Graph g = random_regular(36, 8, rng);
    EXPECT_EQ(
        sadm_cost(g, run_algorithm(AlgorithmId::kRegularEuler, g, 4)), 178);
    EXPECT_EQ(
        sadm_cost(g, run_algorithm(AlgorithmId::kRegularEuler, g, 16)), 140);
  }
}

TEST(Regression, GeneratorsAreStable) {
  // The generators feed every golden value above; pin their output shape.
  // Unsigned accumulator: the rolling hash wraps by design.
  Rng rng(2026);
  Graph g = random_dense_ratio(36, 0.5, rng);
  unsigned long long edge_hash = 0;
  for (const Edge& e : g.edges()) {
    edge_hash = edge_hash * 131 + static_cast<unsigned long long>(e.u) * 37 +
                static_cast<unsigned long long>(e.v);
  }
  Rng rng2(2026);
  Graph g2 = random_dense_ratio(36, 0.5, rng2);
  unsigned long long edge_hash2 = 0;
  for (const Edge& e : g2.edges()) {
    edge_hash2 = edge_hash2 * 131 + static_cast<unsigned long long>(e.u) * 37 +
                 static_cast<unsigned long long>(e.v);
  }
  EXPECT_EQ(edge_hash, edge_hash2);
}

TEST(Regression, RepeatedRunsAreIdentical) {
  // Same options.seed -> identical partitions (not just costs).
  Rng rng(5);
  Graph g = random_dense_ratio(24, 0.5, rng);
  for (AlgorithmId id :
       {AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
        AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler,
        AlgorithmId::kCliquePack}) {
    GroomingOptions options;
    options.seed = 17;
    EdgePartition a = run_algorithm(id, g, 8, options);
    EdgePartition b = run_algorithm(id, g, 8, options);
    EXPECT_EQ(a.parts, b.parts) << algorithm_name(id);
  }
}

}  // namespace
}  // namespace tgroom
