// The §1 modeling reduction, executed: grooming with per-direction
// wavelength freedom is never cheaper than pairing both directions on one
// wavelength (Wang–Gu TR [18]), so the k-edge-partition model is lossless.
#include <gtest/gtest.h>

#include "algorithms/exact.hpp"
#include "gen/random_graph.hpp"
#include "grooming/directed.hpp"

namespace tgroom {
namespace {

TEST(Directed, FromPairsDoublesDemands) {
  DemandSet demands(6);
  demands.add_pair(0, 3);
  demands.add_pair(1, 4);
  auto directed = directed_from_pairs(demands);
  ASSERT_EQ(directed.size(), 4u);
  EXPECT_EQ(directed[0].from, 0);
  EXPECT_EQ(directed[0].to, 3);
  EXPECT_EQ(directed[1].from, 3);
  EXPECT_EQ(directed[1].to, 0);
}

TEST(Directed, ArcOverlapCases) {
  UpsrRing ring(8);
  // Arcs [0..3) and [2..5): overlap at span 2.
  EXPECT_TRUE(arcs_overlap(ring, {0, 3}, {2, 5}));
  // Arcs [0..3) and [3..6): disjoint.
  EXPECT_FALSE(arcs_overlap(ring, {0, 3}, {3, 6}));
  // Wrap-around: [6..1) covers spans 6,7,0; overlaps [0..2).
  EXPECT_TRUE(arcs_overlap(ring, {6, 1}, {0, 2}));
  EXPECT_FALSE(arcs_overlap(ring, {6, 0}, {0, 6}));
  // A demand's two directions never overlap (they partition the ring).
  EXPECT_FALSE(arcs_overlap(ring, {2, 5}, {5, 2}));
  // Identical arcs overlap.
  EXPECT_TRUE(arcs_overlap(ring, {1, 4}, {1, 4}));
}

TEST(Directed, ValidationCatchesConflicts) {
  UpsrRing ring(6);
  DirectedPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 2;
  plan.assignments = {
      {{0, 3}, 0, 0},
      {{3, 0}, 0, 0},  // complement arc: same slot is fine
      {{1, 4}, 0, 1},
  };
  EXPECT_TRUE(validate_directed_plan(ring, plan));
  // Overlapping arcs on the same wavelength+slot: invalid.
  plan.assignments.push_back({{2, 5}, 0, 1});
  EXPECT_FALSE(validate_directed_plan(ring, plan));
  plan.assignments.pop_back();
  // Slot out of range.
  plan.assignments.push_back({{2, 5}, 0, 2});
  EXPECT_FALSE(validate_directed_plan(ring, plan));
}

TEST(Directed, SadmCounting) {
  DirectedPlan plan;
  plan.ring_size = 6;
  plan.grooming_factor = 2;
  plan.assignments = {
      {{0, 3}, 0, 0},
      {{3, 0}, 0, 1},  // same wavelength: shares both sites
      {{0, 3}, 1, 0},  // different wavelength: two more sites
  };
  EXPECT_EQ(directed_plan_sadm_count(plan), 4);
}

TEST(Directed, ExactOptimumTinyCases) {
  // One pair: 2 SADMs regardless of k.
  DemandSet one(4);
  one.add_pair(0, 2);
  EXPECT_EQ(directed_exact_optimum(one, 1).sadm_count, 2);
  EXPECT_EQ(directed_exact_optimum(one, 4).sadm_count, 2);

  // Two pairs sharing a node, k=2: both fit one wavelength -> 3 SADMs.
  DemandSet two(5);
  two.add_pair(0, 2);
  two.add_pair(2, 4);
  EXPECT_EQ(directed_exact_optimum(two, 2).sadm_count, 3);
  // k=1: each pair needs its own wavelength -> 4.
  EXPECT_EQ(directed_exact_optimum(two, 1).sadm_count, 4);
}

class PairingLemmaP : public ::testing::TestWithParam<int> {};

TEST_P(PairingLemmaP, SameWavelengthPairingIsLossless) {
  // [18]: the directed optimum equals the paired (k-edge-partition)
  // optimum.  directed <= paired holds trivially (pairing is a special
  // case); equality is the lemma.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 11);
  NodeId n = static_cast<NodeId>(4 + rng.below(3));  // 4..6 ring nodes
  long long cap = static_cast<long long>(n) * (n - 1) / 2;
  long long m = std::min<long long>(2 + static_cast<long long>(rng.below(3)),
                                    cap);  // 2..4 pairs
  Graph g = random_gnm(n, m, rng);
  DemandSet demands = DemandSet::from_traffic_graph(g);
  for (int k : {1, 2, 3}) {
    long long paired = exact_optimal_partition(g, k).cost;
    long long directed = directed_exact_optimum(demands, k).sadm_count;
    EXPECT_LE(directed, paired) << "k=" << k;
    EXPECT_EQ(directed, paired) << "k=" << k << " n=" << n << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairingLemmaP, ::testing::Range(0, 12));

TEST(Directed, EmptyDemandSet) {
  DemandSet none(4);
  DirectedExactResult r = directed_exact_optimum(none, 2);
  EXPECT_EQ(r.sadm_count, 0);
  EXPECT_TRUE(r.plan.assignments.empty());
}

TEST(Directed, GuardsAgainstLargeInstances) {
  DemandSet big(12);
  for (NodeId v = 1; v <= 6; ++v) big.add_pair(0, v);
  EXPECT_THROW(directed_exact_optimum(big, 2), CheckError);
}

}  // namespace
}  // namespace tgroom
