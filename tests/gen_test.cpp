#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"
#include "gen/traffic_patterns.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

TEST(RandomGnm, ExactEdgeCountAndSimple) {
  Rng rng(1);
  for (long long m : {0LL, 1LL, 10LL, 100LL, 630LL}) {
    Graph g = random_gnm(36, m, rng);
    EXPECT_EQ(g.node_count(), 36);
    EXPECT_EQ(g.edge_count(), m);
    EXPECT_TRUE(is_simple(g));
  }
}

TEST(RandomGnm, RejectsTooManyEdges) {
  Rng rng(1);
  EXPECT_THROW(random_gnm(4, 7, rng), CheckError);  // max is 6
}

TEST(RandomGnm, FullGraphIsComplete) {
  Rng rng(2);
  Graph g = random_gnm(8, 28, rng);
  ASSERT_TRUE(regularity(g).has_value());
  EXPECT_EQ(*regularity(g), 7);
}

TEST(RandomGnm, DifferentSeedsDifferentGraphs) {
  Rng a(1), b(2);
  Graph ga = random_gnm(20, 50, a);
  Graph gb = random_gnm(20, 50, b);
  int common = 0;
  for (const Edge& e : ga.edges()) common += gb.has_edge(e.u, e.v);
  EXPECT_LT(common, 50);
}

TEST(DenseRatio, MatchesPaperFormula) {
  // m = n^(1+d): for n=36, d=0.5 -> 36^1.5 = 216.
  EXPECT_EQ(edges_for_dense_ratio(36, 0.5), 216);
  // d=0.8 would overshoot n(n-1)/2=630: clamped.
  EXPECT_EQ(edges_for_dense_ratio(36, 0.8), 630);
  EXPECT_EQ(edges_for_dense_ratio(36, 0.0), 36);
}

TEST(DenseRatio, GeneratorUsesFormula) {
  Rng rng(3);
  Graph g = random_dense_ratio(36, 0.3, rng);
  EXPECT_EQ(g.edge_count(), edges_for_dense_ratio(36, 0.3));
}

TEST(RegularFeasibility, ParityAndRange) {
  EXPECT_TRUE(regular_feasible(36, 7));
  EXPECT_TRUE(regular_feasible(36, 16));
  EXPECT_FALSE(regular_feasible(35, 7));  // n*r odd
  EXPECT_TRUE(regular_feasible(35, 8));
  EXPECT_FALSE(regular_feasible(8, 8));  // r >= n
  EXPECT_TRUE(regular_feasible(5, 0));
}

class RandomRegularP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RandomRegularP, ProducesSimpleRegularGraphs) {
  auto [n, r] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    Graph g = random_regular(static_cast<NodeId>(n), static_cast<NodeId>(r),
                             rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_TRUE(is_simple(g));
    ASSERT_TRUE(regularity(g).has_value());
    EXPECT_EQ(*regularity(g), r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSettings, RandomRegularP,
    ::testing::Values(std::pair{36, 7}, std::pair{36, 8}, std::pair{36, 15},
                      std::pair{36, 16}, std::pair{10, 3}, std::pair{12, 5},
                      std::pair{8, 2}, std::pair{6, 5}, std::pair{20, 19},
                      std::pair{4, 1}));

TEST(RandomRegular, SwapsActuallyRandomize) {
  Rng a(1), b(2);
  Graph ga = random_regular(24, 5, a);
  Graph gb = random_regular(24, 5, b);
  int common = 0;
  for (const Edge& e : ga.edges()) common += gb.has_edge(e.u, e.v);
  EXPECT_LT(common, ga.edge_count());
}

TEST(RandomRegular, InfeasibleThrows) {
  Rng rng(1);
  EXPECT_THROW(random_regular(7, 3, rng), CheckError);
}

TEST(TrafficPatterns, AllToAll) {
  DemandSet d = all_to_all_traffic(6);
  EXPECT_EQ(d.size(), 15u);
  Graph g = d.traffic_graph();
  EXPECT_EQ(*regularity(g), 5);
}

TEST(TrafficPatterns, RegularPattern) {
  Rng rng(4);
  DemandSet d = regular_traffic(36, 7, rng);
  Graph g = d.traffic_graph();
  EXPECT_EQ(*regularity(g), 7);
  EXPECT_EQ(d.size(), 36u * 7 / 2);
}

TEST(TrafficPatterns, RandomPattern) {
  Rng rng(5);
  DemandSet d = random_traffic(36, 0.5, rng);
  EXPECT_EQ(d.size(), 216u);
}

TEST(TrafficPatterns, HubTraffic) {
  DemandSet d = hub_traffic(10, 2);
  // hub 0: 9 pairs; hub 1: 8 new pairs (pair {0,1} counted once).
  EXPECT_EQ(d.size(), 17u);
  EXPECT_TRUE(d.contains(0, 1));
  EXPECT_TRUE(d.contains(1, 9));
  EXPECT_FALSE(d.contains(2, 3));
}

}  // namespace
}  // namespace tgroom
