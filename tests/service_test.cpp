// Tests of the grooming service: protocol parsing, queue/cache/metrics
// units, and loopback NDJSON sessions pinned bit-for-bit against direct
// library calls.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "graph/fingerprint.hpp"
#include "grooming/incremental.hpp"
#include "grooming/plan.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "util/json.hpp"

namespace tgroom {
namespace {

// ---------------------------------------------------------------- helpers

std::string groom_request(long long id, const Graph& g, AlgorithmId algorithm,
                          int k, std::uint64_t seed,
                          bool include_partition = true, bool hold = false) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "groom");
  w.kv("id", id);
  w.key("graph");
  write_graph_json(w, g);
  w.kv("algorithm", algorithm_name(algorithm));
  w.kv("k", static_cast<long long>(k));
  w.kv("seed", seed);
  if (include_partition) w.kv("include_partition", true);
  if (hold) w.kv("hold", true);
  w.end_object();
  return w.take();
}

std::string provision_request(long long id, const GroomingPlan& plan,
                              const std::vector<DemandPair>& add,
                              bool include_plan = true) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "provision");
  w.kv("id", id);
  w.key("plan");
  write_plan_json(w, plan);
  w.key("add").begin_array();
  for (const DemandPair& p : add) {
    w.begin_array()
        .value(static_cast<long long>(p.a))
        .value(static_cast<long long>(p.b))
        .end_array();
  }
  w.end_array();
  if (include_plan) w.kv("include_plan", true);
  w.end_object();
  return w.take();
}

struct Session {
  std::vector<JsonValue> responses;  // protocol responses, output order
  std::vector<JsonValue> events;     // {"event":...} lines (exit metrics)
  GroomingService* service = nullptr;

  const JsonValue* by_id(long long id) const {
    for (const JsonValue& r : responses) {
      const JsonValue* rid = r.find("id");
      if (rid && rid->is_number() && rid->as_int() == id) return &r;
    }
    return nullptr;
  }
};

Session run_session(GroomingService& service,
                    const std::vector<std::string>& lines) {
  std::string input;
  for (const std::string& line : lines) {
    input += line;
    input += '\n';
  }
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(service.run(in, out), 0);
  Session session;
  session.service = &service;
  std::istringstream parse(out.str());
  std::string line;
  while (std::getline(parse, line)) {
    EXPECT_FALSE(line.empty()) << "blank response line";
    JsonValue v = parse_json(line);
    if (v.find("event")) {
      session.events.push_back(std::move(v));
    } else {
      session.responses.push_back(std::move(v));
    }
  }
  return session;
}

Graph test_graph(NodeId n, double density, std::uint64_t seed) {
  Rng rng(seed);
  return random_traffic(n, density, rng).traffic_graph();
}

std::vector<std::vector<EdgeId>> parts_from_json(const JsonValue& v) {
  EXPECT_TRUE(v.is_array());
  std::vector<std::vector<EdgeId>> parts;
  for (const JsonValue& part : v.array) {
    EXPECT_TRUE(part.is_array());
    std::vector<EdgeId> edges;
    for (const JsonValue& e : part.array) {
      edges.push_back(static_cast<EdgeId>(e.as_int()));
    }
    parts.push_back(std::move(edges));
  }
  return parts;
}

// ------------------------------------------------------------ unit pieces

TEST(BoundedQueue, RejectsWhenFullAndDrains) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.try_push(4));
  std::vector<int> leftover = queue.close_and_drain();
  ASSERT_EQ(leftover.size(), 2u);
  EXPECT_EQ(leftover[0], 2);
  EXPECT_EQ(leftover[1], 4);
  EXPECT_FALSE(queue.try_push(5));
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedQueue, CloseLetsConsumersFinish) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.try_push(7));
  EXPECT_TRUE(queue.try_push(8));
  queue.close();
  EXPECT_FALSE(queue.try_push(9));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.pop(out));
}

TEST(PlanCache, LruEvictionAndRefresh) {
  PlanCache cache(2, /*shards=*/1);  // one shard: exact global LRU order
  GroomCacheKey a{1, 0, 4, 1, 0}, b{2, 0, 4, 1, 0}, c{3, 0, 4, 1, 0};
  GroomCacheValue value;
  value.sadms = 10;
  cache.put(a, value);
  value.sadms = 20;
  cache.put(b, value);
  EXPECT_NE(cache.get(a), nullptr);  // refresh a; b becomes LRU
  value.sadms = 30;
  cache.put(c, value);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.get(a), nullptr);
  EXPECT_EQ(cache.get(b), nullptr);
  ASSERT_NE(cache.get(c), nullptr);
  EXPECT_EQ(cache.get(c)->sadms, 30);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 4);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.evictions, 1);
}

TEST(PlanCache, HitSharesThePayloadInsteadOfCopying) {
  PlanCache cache(4, /*shards=*/1);
  GroomCacheKey key{42, 0, 8, 1, 0};
  GroomCacheValue value;
  value.parts = {{0, 1, 2}, {3, 4}};
  cache.put(key, std::move(value));

  auto first = cache.get(key);
  auto second = cache.get(key);
  ASSERT_NE(first, nullptr);
  // Both hits hand back the same immutable object — a refcount bump, not
  // a deep copy of the partition payload.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->parts.data(), second->parts.data());
  EXPECT_EQ(first->parts[0].data(), second->parts[0].data());

  // The pointee outlives eviction: overflow the cache, then read through
  // the handle obtained before the eviction.
  for (std::uint64_t i = 0; i < 16; ++i) {
    cache.put(GroomCacheKey{100 + i, 0, 8, 1, 0}, GroomCacheValue{});
  }
  EXPECT_EQ(cache.get(key), nullptr);
  EXPECT_EQ(first->parts[1][1], 4);
}

TEST(PlanCache, ConcurrentOverlappingKeysKeepInvariants) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  constexpr std::uint64_t kKeySpace = 24;  // overlapping across threads
  constexpr std::size_t kCapacity = 16;    // smaller than the key space
  PlanCache cache(kCapacity, /*shards=*/4);

  std::atomic<long long> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t fp = static_cast<std::uint64_t>(
            (i + t * 7) % static_cast<int>(kKeySpace));
        GroomCacheKey key{fp, 0, 4, 1, 0};
        if (auto hit = cache.get(key)) {
          // Values are immutable; a concurrent eviction must not free
          // them under us.
          EXPECT_EQ(hit->sadms, static_cast<long long>(fp));
          observed_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          GroomCacheValue value;
          value.sadms = static_cast<long long>(fp);
          cache.put(key, std::move(value));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Size never exceeds the sharded bound, and the counters reconcile:
  // every get was a hit or a miss, and entries still resident plus
  // entries evicted cannot exceed the number of puts (refreshes allowed).
  EXPECT_LE(cache.size(),
            cache.shard_count() *
                ((kCapacity + cache.shard_count() - 1) / cache.shard_count()));
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<long long>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(static_cast<long long>(cache.size()) + stats.evictions,
            stats.misses);  // puts happen only after a miss
}

TEST(BoundedQueue, BlockingPushWaitsForASlot) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still parked: queue is full
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);

  // close() releases producers blocked on a full queue.
  EXPECT_TRUE(queue.try_push(3));
  std::thread blocked([&] { EXPECT_FALSE(queue.push(4)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  blocked.join();
}

TEST(PlanCache, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.put(GroomCacheKey{1, 0, 4, 1, 0}, GroomCacheValue{});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(GroomCacheKey{1, 0, 4, 1, 0}), nullptr);
}

TEST(ServiceMetrics, CountersAndHistogram) {
  ServiceMetrics metrics;
  metrics.increment(ServiceMetrics::Counter::kOk, 3);
  metrics.increment(ServiceMetrics::Counter::kCacheHits);
  metrics.observe_latency(std::chrono::microseconds(3));    // bucket [2,4)
  metrics.observe_latency(std::chrono::microseconds(100));  // bucket [64,128)
  EXPECT_EQ(metrics.count(ServiceMetrics::Counter::kOk), 3);
  JsonValue v = parse_json(metrics.to_json());
  const JsonValue* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("ok")->as_int(), 3);
  EXPECT_EQ(counters->find("cache_hits")->as_int(), 1);
  const JsonValue* latency = v.find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->as_int(), 2);
  EXPECT_EQ(latency->find("sum_us")->as_int(), 103);
  EXPECT_EQ(latency->find("max_us")->as_int(), 100);
  long long bucketed = 0;
  for (const JsonValue& bucket : latency->find("buckets")->array) {
    bucketed += bucket.array[1].as_int();
  }
  EXPECT_EQ(bucketed, 2);
}

TEST(Protocol, ParseErrorsAreStructured) {
  EXPECT_FALSE(parse_request("not json").request.has_value());
  EXPECT_FALSE(parse_request("[1,2]").request.has_value());
  EXPECT_FALSE(parse_request(R"({"id":5})").request.has_value());
  EXPECT_FALSE(parse_request(R"({"op":"warp","id":5})").request.has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"groom","k":4})").request.has_value());
  // id is echoed even when the body is bad.
  RequestParse bad = parse_request(R"({"op":"warp","id":5})");
  EXPECT_TRUE(bad.has_id);
  EXPECT_EQ(bad.id, 5);
  // provision needs exactly one plan source.
  EXPECT_FALSE(parse_request(
                   R"({"op":"provision","plan_id":1,)"
                   R"("plan":{"ring_size":4,"k":2,"pairs":[]},"add":[[0,1]]})")
                   .request.has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"provision","plan_id":1,"add":[]})")
          .request.has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"provision","plan_id":1,"add":[[2,2]]})")
          .request.has_value());
}

TEST(Protocol, GraphAndPlanRoundTrip) {
  Graph g = test_graph(10, 0.5, 7);
  JsonWriter w;
  write_graph_json(w, g);
  Graph back = graph_from_json(parse_json(w.str()));
  EXPECT_EQ(graph_fingerprint(g), graph_fingerprint(back));

  EdgePartition partition = run_algorithm(AlgorithmId::kSpanTEuler, g, 4);
  GroomingPlan plan =
      plan_from_partition(DemandSet::from_traffic_graph(g), g, partition);
  JsonWriter pw;
  write_plan_json(pw, plan);
  GroomingPlan plan_back = plan_from_json(parse_json(pw.str()));
  EXPECT_EQ(serialize_plan(plan), serialize_plan(plan_back));
}

// ------------------------------------------------------- service sessions

TEST(Service, GroomMatchesDirectRun) {
  Graph g = test_graph(12, 0.5, 11);
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  Session session = run_session(
      service, {groom_request(1, g, AlgorithmId::kSpanTEuler, 4, 99)});
  ASSERT_EQ(session.responses.size(), 1u);
  const JsonValue& r = session.responses[0];
  EXPECT_TRUE(r.find("ok")->boolean);

  GroomingOptions options;
  options.seed = 99;
  EdgePartition direct = run_algorithm(AlgorithmId::kSpanTEuler, g, 4, options);
  EXPECT_EQ(r.find("sadms")->as_int(), sadm_cost(g, direct));
  EXPECT_EQ(r.find("wavelengths")->as_int(), direct.wavelength_count());
  EXPECT_EQ(r.find("lower_bound")->as_int(),
            partition_cost_lower_bound(g, 4));
  EXPECT_EQ(parts_from_json(*r.find("partition")), direct.parts);
}

TEST(Service, CacheHitReturnsIdenticalPayload) {
  Graph g = test_graph(12, 0.5, 13);
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  Session session = run_session(
      service, {groom_request(1, g, AlgorithmId::kSpanTEuler, 4, 5),
                groom_request(2, g, AlgorithmId::kSpanTEuler, 4, 5),
                groom_request(3, g, AlgorithmId::kSpanTEuler, 8, 5)});
  ASSERT_EQ(session.responses.size(), 3u);
  const JsonValue &a = session.responses[0], &b = session.responses[1];
  EXPECT_FALSE(a.find("cached")->boolean);
  EXPECT_TRUE(b.find("cached")->boolean);
  EXPECT_FALSE(session.responses[2].find("cached")->boolean);  // k differs
  EXPECT_EQ(a.find("sadms")->as_int(), b.find("sadms")->as_int());
  EXPECT_EQ(parts_from_json(*a.find("partition")),
            parts_from_json(*b.find("partition")));
  EXPECT_EQ(service.metrics().count(ServiceMetrics::Counter::kCacheHits), 1);
  EXPECT_EQ(service.metrics().count(ServiceMetrics::Counter::kCacheMisses),
            2);
}

TEST(Service, HeldPlanProvisionMatchesDirectChain) {
  Graph g = test_graph(10, 0.4, 17);
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  Session session = run_session(
      service,
      {groom_request(1, g, AlgorithmId::kSpanTEuler, 4, 1, false, true),
       R"({"op":"provision","id":2,"plan_id":1,"add":[[0,3],[1,4]],)"
       R"("include_plan":true})",
       R"({"op":"provision","id":3,"plan_id":1,"add":[[2,5]],)"
       R"("include_plan":true})"});
  ASSERT_EQ(session.responses.size(), 3u);
  EXPECT_EQ(session.responses[0].find("plan_id")->as_int(), 1);

  EdgePartition direct = run_algorithm(AlgorithmId::kSpanTEuler, g, 4);
  GroomingPlan plan =
      plan_from_partition(DemandSet::from_traffic_graph(g), g, direct);
  IncrementalResult step1 =
      add_demands_incremental(plan, {DemandPair{0, 3}, DemandPair{1, 4}});
  IncrementalResult step2 =
      add_demands_incremental(step1.plan, {DemandPair{2, 5}});

  const JsonValue& r2 = session.responses[1];
  EXPECT_EQ(r2.find("new_sadms")->as_int(), step1.new_sadms);
  EXPECT_EQ(serialize_plan(plan_from_json(*r2.find("plan"))),
            serialize_plan(step1.plan));
  const JsonValue& r3 = session.responses[2];
  EXPECT_EQ(r3.find("new_sadms")->as_int(), step2.new_sadms);
  EXPECT_EQ(serialize_plan(plan_from_json(*r3.find("plan"))),
            serialize_plan(step2.plan));
  EXPECT_EQ(service.held_plan_count(), 1u);
}

TEST(Service, UnknownPlanIdIsBadRequest) {
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  Session session = run_session(
      service, {R"({"op":"provision","id":1,"plan_id":42,"add":[[0,1]]})"});
  ASSERT_EQ(session.responses.size(), 1u);
  EXPECT_FALSE(session.responses[0].find("ok")->boolean);
  EXPECT_EQ(session.responses[0].find("error")->string, "bad_request");
}

std::string release_request(long long id, const GroomingPlan& plan,
                            const std::vector<DemandPair>& remove,
                            bool include_plan = true) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "release");
  w.kv("id", id);
  w.key("plan");
  write_plan_json(w, plan);
  w.key("remove").begin_array();
  for (const DemandPair& p : remove) {
    w.begin_array()
        .value(static_cast<long long>(p.a))
        .value(static_cast<long long>(p.b))
        .end_array();
  }
  w.end_array();
  if (include_plan) w.kv("include_plan", true);
  w.end_object();
  return w.take();
}

TEST(Service, ReleaseHeldPlanMatchesDirectRelease) {
  Graph g = test_graph(10, 0.5, 23);
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  GroomingPlan direct = plan_from_partition(
      DemandSet::from_traffic_graph(g), g,
      run_algorithm(AlgorithmId::kSpanTEuler, g, 4));
  const std::vector<DemandPair> remove = {direct.pairs[0].pair,
                                          direct.pairs[2].pair};
  JsonWriter req;
  req.begin_object();
  req.kv("op", "release");
  req.kv("id", 2);
  req.kv("plan_id", 1);
  req.key("remove").begin_array();
  for (const DemandPair& p : remove) {
    req.begin_array()
        .value(static_cast<long long>(p.a))
        .value(static_cast<long long>(p.b))
        .end_array();
  }
  req.end_array();
  req.kv("include_plan", true);
  req.end_object();
  Session session = run_session(
      service,
      {groom_request(1, g, AlgorithmId::kSpanTEuler, 4, 1, false, true),
       req.take(),
       R"({"op":"provision","id":3,"plan_id":1,"add":[[0,3]]})"});
  ASSERT_EQ(session.responses.size(), 3u);

  const ReleaseStats stats = release_demands(direct, remove);
  const JsonValue& r = session.responses[1];
  ASSERT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("released")->as_int(), stats.released);
  EXPECT_EQ(r.find("repair_moves")->as_int(), stats.repair_moves);
  EXPECT_EQ(r.find("freed_wavelengths")->as_int(), stats.freed_wavelengths);
  EXPECT_EQ(r.find("sadms_removed")->as_int(), stats.sadms_removed);
  EXPECT_EQ(r.find("sadms")->as_int(), plan_sadm_count(direct));
  EXPECT_EQ(serialize_plan(plan_from_json(*r.find("plan"))),
            serialize_plan(direct));
  // The held plan is the released one: provisioning continues from it.
  EXPECT_TRUE(session.responses[2].find("ok")->boolean);
  EXPECT_EQ(service.held_plan_count(), 1u);
}

TEST(Service, ReleaseAllDropsTheHeldPlan) {
  Graph g = test_graph(8, 0.5, 29);
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  Session session = run_session(
      service,
      {groom_request(1, g, AlgorithmId::kSpanTEuler, 4, 1, false, true),
       R"({"op":"release","id":2,"plan_id":1,"all":true})",
       R"({"op":"provision","id":3,"plan_id":1,"add":[[0,1]]})",
       R"({"op":"release","id":4,"plan_id":1,"all":true})"});
  ASSERT_EQ(session.responses.size(), 4u);
  const JsonValue& r = session.responses[1];
  ASSERT_TRUE(r.find("ok")->boolean);
  EXPECT_TRUE(r.find("dropped")->boolean);
  EXPECT_EQ(r.find("remaining")->as_int(), 0);
  EXPECT_EQ(service.held_plan_count(), 0u);
  // Both follow-ups hit a plan that no longer exists.
  EXPECT_FALSE(session.responses[2].find("ok")->boolean);
  EXPECT_EQ(session.responses[2].find("error")->string, "bad_request");
  EXPECT_FALSE(session.responses[3].find("ok")->boolean);
}

TEST(Service, ReleaseInlinePlanIsStateless) {
  Graph g = test_graph(10, 0.5, 31);
  GroomingPlan plan = plan_from_partition(
      DemandSet::from_traffic_graph(g), g,
      run_algorithm(AlgorithmId::kSpanTEuler, g, 4));
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  const std::vector<DemandPair> remove = {plan.pairs[1].pair};
  Session session =
      run_session(service, {release_request(1, plan, remove)});
  ASSERT_EQ(session.responses.size(), 1u);
  const JsonValue& r = session.responses[0];
  ASSERT_TRUE(r.find("ok")->boolean);
  GroomingPlan direct = plan;
  release_demands(direct, remove);
  EXPECT_EQ(serialize_plan(plan_from_json(*r.find("plan"))),
            serialize_plan(direct));
  EXPECT_EQ(service.held_plan_count(), 0u);  // nothing was held
}

TEST(Service, ReleaseValidationErrors) {
  Graph g = test_graph(8, 0.5, 37);
  GroomingPlan plan = plan_from_partition(
      DemandSet::from_traffic_graph(g), g,
      run_algorithm(AlgorithmId::kSpanTEuler, g, 4));
  JsonWriter plan_json;
  write_plan_json(plan_json, plan);
  const std::string plan_text = plan_json.take();
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  Session session = run_session(
      service,
      {// Neither plan nor plan_id.
       R"({"op":"release","id":1,"remove":[[0,1]]})",
       // Both remove and all.
       R"({"op":"release","id":2,"plan_id":1,"remove":[[0,1]],"all":true})",
       // Neither remove nor all.
       R"({"op":"release","id":3,"plan_id":1})",
       // Empty remove list.
       R"({"op":"release","id":4,"plan_id":1,"remove":[]})",
       // "all" with an inline plan (drop-all only makes sense held).
       R"({"op":"release","id":5,"plan":)" + plan_text + R"(,"all":true})",
       // Pair not present in the inline plan.
       [&] {
         DemandSet demands = DemandSet::from_traffic_graph(g);
         for (NodeId x = 0; x < 8; ++x) {
           for (NodeId y = static_cast<NodeId>(x + 1); y < 8; ++y) {
             if (!demands.contains(x, y)) {
               return R"({"op":"release","id":6,"plan":)" + plan_text +
                      R"(,"remove":[[)" + std::to_string(x) + "," +
                      std::to_string(y) + R"(]]})";
             }
           }
         }
         ADD_FAILURE() << "dense graph has every pair";
         return std::string();
       }()});
  ASSERT_EQ(session.responses.size(), 6u);
  for (const JsonValue& r : session.responses) {
    EXPECT_FALSE(r.find("ok")->boolean)
        << "id " << r.find("id")->as_int();
    EXPECT_EQ(r.find("error")->string, "bad_request");
  }
}

TEST(Service, DeadlineExpiredBetweenStages) {
  Graph g = test_graph(10, 0.4, 19);
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  RequestParse parsed = parse_request(
      groom_request(1, g, AlgorithmId::kSpanTEuler, 4, 1));
  ASSERT_TRUE(parsed.request.has_value());
  ServiceRequest request = std::move(*parsed.request);
  request.deadline_ms = 1;
  request.admitted =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(50);
  JsonValue response = parse_json(service.execute(request, nullptr));
  EXPECT_FALSE(response.find("ok")->boolean);
  EXPECT_EQ(response.find("error")->string, "deadline_exceeded");
  EXPECT_EQ(
      service.metrics().count(ServiceMetrics::Counter::kDeadlineExceeded), 1);
}

TEST(Service, BadAlgorithmInputIsBadRequest) {
  // Regular_Euler on a non-regular graph must come back as a structured
  // bad_request, not a dropped response.
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  ServiceConfig config;
  config.metrics_on_exit = false;
  GroomingService service(config);
  Session session = run_session(
      service, {groom_request(1, g, AlgorithmId::kRegularEuler, 4, 1)});
  ASSERT_EQ(session.responses.size(), 1u);
  EXPECT_FALSE(session.responses[0].find("ok")->boolean);
  EXPECT_EQ(session.responses[0].find("error")->string, "bad_request");
}

TEST(Service, OverloadRejectionsAreStructured) {
  // One expensive groom (~tens of ms: WangGu on a dense n=300 graph) pins
  // the single worker; the reader floods one-line stats requests through a
  // capacity-1 queue in well under a millisecond, so all but the queued
  // one must trip `overloaded`.
  Graph g = test_graph(300, 0.9, 23);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.cache_capacity = 0;  // the groom pays full compute
  config.metrics_on_exit = false;
  GroomingService service(config);
  const int requests = 64;
  std::vector<std::string> lines;
  lines.push_back(
      groom_request(0, g, AlgorithmId::kWangGuIcc06, 8, 1, false));
  for (int i = 1; i < requests; ++i) {
    lines.push_back(R"({"op":"stats","id":)" + std::to_string(i) + "}");
  }
  Session session = run_session(service, lines);
  ASSERT_EQ(session.responses.size(), static_cast<std::size_t>(requests));
  int ok = 0, overloaded = 0;
  for (const JsonValue& r : session.responses) {
    if (r.find("ok")->boolean) {
      ++ok;
    } else {
      EXPECT_EQ(r.find("error")->string, "overloaded");
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, requests);
  EXPECT_GT(overloaded, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(service.metrics().count(ServiceMetrics::Counter::kOverloaded),
            overloaded);
}

TEST(Service, ShutdownAnswersEveryAcceptedRequest) {
  Graph g = test_graph(32, 0.5, 29);
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 256;
  config.cache_capacity = 0;
  config.metrics_on_exit = false;
  GroomingService service(config);
  const int requests = 40;
  std::vector<std::string> lines;
  for (int i = 0; i < requests; ++i) {
    lines.push_back(groom_request(i, g, AlgorithmId::kSpanTEuler, 8,
                                  static_cast<std::uint64_t>(i), false));
  }
  lines.push_back(R"({"op":"shutdown","id":999})");
  Session session = run_session(service, lines);
  EXPECT_TRUE(service.shutdown_requested());
  // Every request (including shutdown itself) is answered exactly once.
  ASSERT_EQ(session.responses.size(),
            static_cast<std::size_t>(requests) + 1);
  int ok = 0, rejected = 0;
  for (int i = 0; i < requests; ++i) {
    const JsonValue* r = session.by_id(i);
    ASSERT_NE(r, nullptr) << "request " << i << " unanswered";
    if (r->find("ok")->boolean) {
      ++ok;
    } else {
      EXPECT_EQ(r->find("error")->string, "shutting_down");
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, requests);
  const JsonValue* bye = session.by_id(999);
  ASSERT_NE(bye, nullptr);
  EXPECT_TRUE(bye->find("ok")->boolean);
  EXPECT_EQ(bye->find("op")->string, "shutdown");
  EXPECT_EQ(bye->find("rejected_queued")->as_int(), rejected);
}

TEST(Service, EofDrainProcessesEverythingAccepted) {
  Graph g = test_graph(24, 0.5, 31);
  ServiceConfig config;
  config.workers = 4;
  config.queue_capacity = 512;
  config.metrics_on_exit = false;
  GroomingService service(config);
  const int requests = 100;
  std::vector<std::string> lines;
  for (int i = 0; i < requests; ++i) {
    lines.push_back(groom_request(i, g, AlgorithmId::kSpanTEuler, 8, 1,
                                  false));
  }
  Session session = run_session(service, lines);
  ASSERT_EQ(session.responses.size(), static_cast<std::size_t>(requests));
  for (const JsonValue& r : session.responses) {
    EXPECT_TRUE(r.find("ok")->boolean);
  }
}

TEST(Service, StatsAndExitMetrics) {
  Graph g = test_graph(10, 0.5, 37);
  ServiceConfig config;
  config.metrics_on_exit = true;
  GroomingService service(config);
  Session session = run_session(
      service, {groom_request(1, g, AlgorithmId::kSpanTEuler, 4, 1, false),
                R"({"op":"stats","id":2})"});
  ASSERT_EQ(session.responses.size(), 2u);
  const JsonValue& stats = session.responses[1];
  EXPECT_TRUE(stats.find("ok")->boolean);
  EXPECT_EQ(stats.find("op")->string, "stats");
  EXPECT_EQ(stats.find("workers")->as_int(), 0);
  EXPECT_EQ(stats.find("cache_size")->as_int(), 1);
  const JsonValue* metrics = stats.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(metrics->find("counters")->find("received")->as_int(), 2);
  // The exit line carries the final metrics dump.
  ASSERT_EQ(session.events.size(), 1u);
  EXPECT_EQ(session.events[0].find("event")->string, "exit");
  ASSERT_NE(session.events[0].find("metrics"), nullptr);
}

// ------------------------------------------------- the loopback smoke test

// Acceptance: >= 1000 mixed groom/provision requests through the daemon
// with workers in {0, 4}; every response must match a direct
// run_algorithm / add_demands_incremental call bit-for-bit.
TEST(ServiceSmoke, LoopbackParityAcrossWorkerCounts) {
  const AlgorithmId algorithms[] = {
      AlgorithmId::kSpanTEuler, AlgorithmId::kGoldschmidt,
      AlgorithmId::kBrauner, AlgorithmId::kWangGuIcc06,
      AlgorithmId::kCliquePack};
  const int ks[] = {3, 4, 6, 8};

  // A pool of distinct instances so the cache sees hits and misses.
  std::vector<Graph> graphs;
  for (int i = 0; i < 10; ++i) {
    graphs.push_back(
        test_graph(static_cast<NodeId>(8 + i), 0.5,
                   static_cast<std::uint64_t>(41 + i)));
  }
  std::vector<GroomingPlan> base_plans;
  for (const Graph& g : graphs) {
    EdgePartition partition = run_algorithm(AlgorithmId::kSpanTEuler, g, 4);
    base_plans.push_back(
        plan_from_partition(DemandSet::from_traffic_graph(g), g, partition));
  }

  const int total = 1000;
  std::vector<std::string> lines;
  std::vector<std::string> expected(total);  // by request id
  for (int i = 0; i < total; ++i) {
    const std::size_t gi = static_cast<std::size_t>(i) % graphs.size();
    if (i % 2 == 0) {
      const Graph& g = graphs[gi];
      AlgorithmId algorithm = algorithms[(i / 2) % 5];
      int k = ks[(i / 10) % 4];
      auto seed = static_cast<std::uint64_t>(1 + i % 7);
      lines.push_back(groom_request(i, g, algorithm, k, seed, true));
      GroomingOptions options;
      options.seed = seed;
      EdgePartition direct = run_algorithm(algorithm, g, k, options);
      JsonWriter w;
      w.begin_object();
      w.kv("sadms", sadm_cost(g, direct));
      w.kv("wavelengths",
           static_cast<long long>(direct.wavelength_count()));
      w.key("partition");
      write_partition_json(w, direct);
      w.end_object();
      expected[static_cast<std::size_t>(i)] = w.take();
    } else {
      const GroomingPlan& plan = base_plans[gi];
      const NodeId n = plan.ring_size;
      std::vector<DemandPair> add;
      NodeId a = static_cast<NodeId>(i % n);
      NodeId b = static_cast<NodeId>((i + 2 + i % 3) % n);
      if (a == b) b = static_cast<NodeId>((b + 1) % n);
      add.push_back(DemandPair{std::min(a, b), std::max(a, b)});
      add.push_back(DemandPair{0, static_cast<NodeId>(1 + i % (n - 1))});
      lines.push_back(provision_request(i, plan, add, true));
      IncrementalResult direct = add_demands_incremental(plan, add);
      JsonWriter w;
      w.begin_object();
      w.kv("new_sadms", static_cast<long long>(direct.new_sadms));
      w.kv("new_wavelengths",
           static_cast<long long>(direct.new_wavelengths));
      w.kv("reused_sites", static_cast<long long>(direct.reused_sites));
      w.key("plan");
      write_plan_json(w, direct.plan);
      w.end_object();
      expected[static_cast<std::size_t>(i)] = w.take();
    }
  }

  for (std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    ServiceConfig config;
    config.workers = workers;
    config.queue_capacity = 2048;  // nothing rejected in the parity pass
    config.cache_capacity = 64;
    config.metrics_on_exit = false;
    GroomingService service(config);
    Session session = run_session(service, lines);
    ASSERT_EQ(session.responses.size(), static_cast<std::size_t>(total))
        << "workers=" << workers;
    std::vector<const JsonValue*> by_id(total, nullptr);
    for (const JsonValue& r : session.responses) {
      long long id = r.find("id")->as_int();
      ASSERT_GE(id, 0);
      ASSERT_LT(id, total);
      ASSERT_EQ(by_id[static_cast<std::size_t>(id)], nullptr)
          << "duplicate response for id " << id;
      by_id[static_cast<std::size_t>(id)] = &r;
    }
    for (int i = 0; i < total; ++i) {
      const JsonValue* r = by_id[static_cast<std::size_t>(i)];
      ASSERT_NE(r, nullptr) << "workers=" << workers << " id=" << i;
      ASSERT_TRUE(r->find("ok")->boolean)
          << "workers=" << workers << " id=" << i;
      JsonValue want = parse_json(expected[static_cast<std::size_t>(i)]);
      if (i % 2 == 0) {
        EXPECT_EQ(r->find("sadms")->as_int(), want.find("sadms")->as_int())
            << "workers=" << workers << " id=" << i;
        EXPECT_EQ(r->find("wavelengths")->as_int(),
                  want.find("wavelengths")->as_int());
        EXPECT_EQ(parts_from_json(*r->find("partition")),
                  parts_from_json(*want.find("partition")))
            << "workers=" << workers << " id=" << i;
      } else {
        EXPECT_EQ(r->find("new_sadms")->as_int(),
                  want.find("new_sadms")->as_int());
        EXPECT_EQ(r->find("new_wavelengths")->as_int(),
                  want.find("new_wavelengths")->as_int());
        EXPECT_EQ(r->find("reused_sites")->as_int(),
                  want.find("reused_sites")->as_int());
        EXPECT_EQ(serialize_plan(plan_from_json(*r->find("plan"))),
                  serialize_plan(plan_from_json(*want.find("plan"))))
            << "workers=" << workers << " id=" << i;
      }
    }
    EXPECT_EQ(service.metrics().count(ServiceMetrics::Counter::kOk), total);
    EXPECT_EQ(service.metrics().count(ServiceMetrics::Counter::kOverloaded),
              0);
  }
}

}  // namespace
}  // namespace tgroom
