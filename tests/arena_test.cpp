// Tests of the monotonic arena and the zero-allocation request invariant
// (DESIGN.md §11): a cache-hit groom on a warm worker performs zero heap
// allocations end to end, and an uncached groom's heap traffic is bounded
// by the escaping result payload — the pipeline itself runs on the arena.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "algorithms/algorithm.hpp"
#include "algorithms/workspace.hpp"
#include "gen/traffic_patterns.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/alloc_tracker.hpp"
#include "util/arena.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace tgroom {
namespace {

TEST(MonotonicArena, BumpAllocationRespectsAlignment) {
  MonotonicArena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 16);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_EQ(arena.bytes_used(), 3u + 8u + 16u);
  // The memory is real and writable.
  std::memset(c, 0xab, 16);
}

TEST(MonotonicArena, ResetRetainsBlocksForReuse) {
  MonotonicArena arena(/*first_block=*/256);
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t blocks = arena.block_count();
  ASSERT_GT(blocks, 1u);

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // nothing freed

  // The same workload replays entirely out of retained blocks.
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(MonotonicArena, OversizeRequestGetsDedicatedBlock) {
  MonotonicArena arena(/*first_block=*/64);
  void* big = arena.allocate(10'000, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10'000u);
  std::memset(big, 0, 10'000);
}

TEST(ArenaAllocator, HeapFallbackWithoutArena) {
  // Default-constructed allocator (arena == nullptr) must behave like the
  // standard allocator so arena-typed containers stay usable anywhere.
  ArenaVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
}

TEST(ArenaAllocator, ContainerDrawsFromArena) {
  MonotonicArena arena;
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[123], 123);
  EXPECT_GE(arena.bytes_used(), 1000 * sizeof(int));
}

TEST(ArenaAllocator, NestedContainersPropagateArena) {
  MonotonicArena arena;
  ArenaVector<ArenaVector<int>> outer{
      ArenaAllocator<ArenaVector<int>>(&arena)};
  outer.resize(4, ArenaVector<int>(ArenaAllocator<int>(&arena)));
  for (auto& inner : outer) {
    EXPECT_EQ(inner.get_allocator().arena(), &arena);
    inner.push_back(7);
  }
  EXPECT_GE(arena.bytes_used(), 4 * sizeof(int));
}

// ------------------------------------------------- zero-allocation groom

ServiceRequest make_groom_request(const Graph& g, int k) {
  ServiceRequest request;
  request.op = ServiceOp::kGroom;
  request.id = 1;
  request.has_id = true;
  request.graph = g;
  request.algorithm = AlgorithmId::kSpanTEuler;
  request.k = k;
  request.include_partition = true;
  return request;
}

TEST(ZeroAllocation, CachedGroomPerformsNoHeapAllocations) {
  if (!alloc_tracking_enabled()) GTEST_SKIP() << "alloc tracker disabled";
  Rng rng(11);
  const Graph g = random_traffic(16, 0.5, rng).traffic_graph();

  ServiceConfig config;
  config.cache_capacity = 8;
  config.cache_shards = 1;
  GroomingService service(config);
  ServiceRequest request = make_groom_request(g, 4);

  GroomingWorkspace workspace;
  JsonWriter w;
  // Pass 1 misses and populates the cache; pass 2 hits and warms every
  // retained buffer (workspace, writer, response high-water marks).
  service.execute_into(request, workspace, w);
  service.execute_into(request, workspace, w);
  const std::string hit_response = w.str();

  const AllocCounter before = thread_alloc_counter();
  service.execute_into(request, workspace, w);
  const AllocCounter after = thread_alloc_counter();
  EXPECT_EQ(after.count - before.count, 0)
      << "cache-hit groom allocated " << after.count - before.count
      << " times (" << after.bytes - before.bytes << " bytes)";
  EXPECT_EQ(w.str(), hit_response);
}

TEST(ZeroAllocation, UncachedGroomFootprintIsBoundedAndSteady) {
  if (!alloc_tracking_enabled()) GTEST_SKIP() << "alloc tracker disabled";
  Rng rng(12);
  const Graph g = random_traffic(16, 0.5, rng).traffic_graph();

  ServiceConfig config;
  config.cache_capacity = 0;  // every groom recomputes
  GroomingService service(config);
  ServiceRequest request = make_groom_request(g, 4);

  GroomingWorkspace workspace;
  JsonWriter w;
  service.execute_into(request, workspace, w);  // warm-up: grows arena etc.

  auto measure = [&] {
    const AllocCounter before = thread_alloc_counter();
    service.execute_into(request, workspace, w);
    return thread_alloc_counter().count - before.count;
  };
  const long long second = measure();
  const std::size_t reserved = workspace.arena.bytes_reserved();
  const std::size_t blocks = workspace.arena.block_count();
  const long long third = measure();

  // Steady state: a warm worker's only heap traffic is the escaping
  // result payload (shared value + partition parts), not the pipeline.
  EXPECT_EQ(second, third);
  EXPECT_LT(second, 200);
  // The arena's footprint is the high-water mark of one request — it
  // stops growing once warm.
  EXPECT_EQ(workspace.arena.bytes_reserved(), reserved);
  EXPECT_EQ(workspace.arena.block_count(), blocks);
}

TEST(ZeroAllocation, WorkspaceArenaResetsBetweenRequests) {
  Rng rng(13);
  const Graph g = random_traffic(12, 0.5, rng).traffic_graph();
  GroomingWorkspace workspace;
  run_algorithm(AlgorithmId::kSpanTEuler, g, 4, {}, &workspace);
  const std::size_t used_once = workspace.arena.bytes_used();
  ASSERT_GT(used_once, 0u);
  run_algorithm(AlgorithmId::kSpanTEuler, g, 4, {}, &workspace);
  // prepare() resets the arena first, so usage does not accumulate.
  EXPECT_EQ(workspace.arena.bytes_used(), used_once);
}

}  // namespace
}  // namespace tgroom
