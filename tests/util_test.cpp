#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    TGROOM_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { TGROOM_CHECK(2 + 2 == 4); }

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool low_hit = false, high_hit = false;
  for (int i = 0; i < 5000; ++i) {
    auto x = rng.uniform_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    low_hit |= (x == -2);
    high_hit |= (x == 2);
  }
  EXPECT_TRUE(low_hit);
  EXPECT_TRUE(high_hit);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng b(42);
  // The child must not replay the parent's post-split outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child() == b());
  EXPECT_LT(same, 4);
}

TEST(Table, AlignsAndCounts) {
  TextTable t("title");
  t.set_header({"a", "long-column"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  std::string s = t.to_string();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("long-column"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(static_cast<long long>(42)), "42");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  std::string path = ::testing::TempDir() + "/tgroom_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"x", "y"});
    csv.write_row({"1", "two,three"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,y");
  EXPECT_EQ(line2, "1,\"two,three\"");
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog",       "--n",    "36",  "--dense=0.5",
                        "positional", "--flag", nullptr};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("n", 0), 36);
  EXPECT_DOUBLE_EQ(args.get_double("dense", 0), 0.5);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
}

TEST(Cli, ParsesIntList) {
  const char* argv[] = {"prog", "--k=4,8,16", nullptr};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int_list("k", {}), (std::vector<int>{4, 8, 16}));
  EXPECT_EQ(args.get_int_list("other", {1}), (std::vector<int>{1}));
}

TEST(ThreadPool, InlineModeRunsTasks) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_index(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::vector<std::atomic<int>> hits(103);
  pool.parallel_for_chunks(103, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
    std::lock_guard<std::mutex> lock(mutex);
    chunks.push_back({begin, end});
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // One task per chunk, not per index: 3 workers -> at most 12 chunks.
  EXPECT_LE(chunks.size(), 12u);
  EXPECT_GE(chunks.size(), 3u);
}

TEST(ThreadPool, ChunksInlineWhenNoWorkers) {
  ThreadPool pool(0);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(7, [&](std::size_t begin, std::size_t end) {
    chunks.push_back({begin, end});
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 7}));
  pool.parallel_for_chunks(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_index(
                   8,
                   [&](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, DestructionRunsQueuedTasks) {
  // Destroying a pool with work still queued must run every accepted task
  // (futures returned by submit() would otherwise dangle as broken
  // promises) and join cleanly.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    // Block the single worker, then pile tasks behind it.
    auto blocker = pool.submit([opened] { opened.wait(); });
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 0);  // worker still parked on the gate
    gate.set_value();
    blocker.get();
    // Pool destroyed here with most of the 32 tasks still queued.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ChunkExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  try {
    pool.parallel_for_chunks(100, [](std::size_t begin, std::size_t) {
      if (begin == 0) throw std::runtime_error("chunk zero failed");
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk zero failed");
  }
  // The pool is still usable after a throwing batch.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for_index(10, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, InlineChunkExceptionPropagates) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.parallel_for_chunks(
                   5, [](std::size_t, std::size_t) {
                     throw std::runtime_error("inline boom");
                   }),
               std::runtime_error);
}

TEST(Json, WriterEscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.kv("text", "a\"b\\c\n\t\x01z");
  w.kv("flag", true);
  w.kv("count", 42);
  w.kv("big", std::uint64_t{18446744073709551615ULL});
  w.kv("ratio", 2.5);
  w.kv("whole", 3.0);
  w.key("list").begin_array().value(1).null().end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"text":"a\"b\\c\n\t\u0001z","flag":true,"count":42,)"
            R"("big":18446744073709551615,"ratio":2.5,"whole":3,)"
            R"("list":[1,null]})");
}

TEST(Json, ParseRoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,"xé😀"],"b":{"nested":null},"c":-7})";
  JsonValue v = parse_json(doc);
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].string, "x\xC3\xA9\xF0\x9F\x98\x80");
  EXPECT_TRUE(v.find("b")->find("nested")->is_null());
  EXPECT_EQ(v.find("c")->as_int(), -7);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_THROW(parse_json(""), CheckError);
  EXPECT_THROW(parse_json("{"), CheckError);
  EXPECT_THROW(parse_json("{}extra"), CheckError);
  EXPECT_THROW(parse_json(R"({"a":01})"), CheckError);
  EXPECT_THROW(parse_json(R"(["unterminated)"), CheckError);
  EXPECT_THROW(parse_json("[1,]"), CheckError);
}

TEST(Json, AsIntRejectsNonIntegral) {
  EXPECT_THROW(parse_json("2.5").as_int(), CheckError);
  EXPECT_THROW(parse_json("true").as_int(), CheckError);
  EXPECT_EQ(parse_json("9007199254740992").as_int(), 9007199254740992LL);
}

}  // namespace
}  // namespace tgroom
