// CHURN — dynamic-traffic event rate: arrivals through the incremental
// groomer plus departures through release_demands, measured end to end
// over a pre-generated DemandScript.  Runs the identical script with local
// repair on and off (runs keyed by "mode"), checks each mode's outcome is
// bit-identical across timed passes (the simulator determinism contract),
// and emits BENCH_churn.json for CI artifact upload and bench_compare.py.
// Plain main like bench_throughput: whole-script wall clock is the
// quantity of interest.  Latency percentiles come from the simulator's
// opt-in collection and are reported, not regression-compared (only
// *_per_sec metrics are).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

struct Measurement {
  std::string mode;  // "repair" | "norepair"
  double seconds = 0;
  double events_per_sec = 0;
  SimResult result;  // from the last timed pass (identical across passes)
};

/// Order-sensitive digest of the deterministic outcome fields.
long long outcome_checksum(const SimResult& r) {
  long long sum = 0;
  const long long fields[] = {
      static_cast<long long>(r.accepted), static_cast<long long>(r.blocked),
      static_cast<long long>(r.departures), r.sadms_added, r.sadms_removed,
      r.repair_moves, r.freed_wavelengths, r.peak_sadms,
      static_cast<long long>(r.peak_wavelengths), r.final_sadms,
      static_cast<long long>(r.residual_demands)};
  long long weight = 1;
  for (long long field : fields) sum += field * weight++;
  return sum;
}

bool write_json(const std::string& path, const TrafficConfig& traffic,
                const SimOptions& sim, std::size_t events,
                const std::vector<Measurement>& measurements) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"dynamic_churn\",\n"
      << "  \"workload\": {\"traffic\": \""
      << traffic_model_name(traffic.model) << "\", \"ring\": "
      << traffic.ring_size << ", \"k\": " << sim.k << ", \"arrivals\": "
      << traffic.arrivals << ", \"events\": " << events
      << ", \"max_wavelengths\": " << sim.max_wavelengths << ", \"seed\": "
      << traffic.seed << "},\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    const SimResult& r = m.result;
    out << "    {\"mode\": \"" << m.mode << "\", \"seconds\": " << m.seconds
        << ", \"events_per_sec\": " << m.events_per_sec
        << ", \"blocking_rate\": " << r.blocking_rate
        << ", \"sadms_removed\": " << r.sadms_removed
        << ", \"repair_moves\": " << r.repair_moves
        << ", \"peak_wavelengths\": " << r.peak_wavelengths
        << ", \"release_p50_us\": " << r.release_latency.p50_us
        << ", \"release_p99_us\": " << r.release_latency.p99_us
        << ", \"arrival_p99_us\": " << r.arrival_latency.p99_us << "}"
        << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  TrafficConfig traffic;
  traffic.model = TrafficModel::kPoisson;
  traffic.ring_size = static_cast<NodeId>(args.get_int("ring", 16));
  traffic.arrival_rate = args.get_double("rate", 8.0);
  traffic.mean_holding = args.get_double("holding", 4.0);
  traffic.load = args.get_double("load", 1.0);
  traffic.arrivals = static_cast<std::size_t>(args.get_int("events", 4000));
  traffic.seed = static_cast<std::uint64_t>(args.get_int("seed", 20060101));

  SimOptions sim;
  sim.k = static_cast<int>(args.get_int("k", 16));
  // A finite budget keeps the plan dense enough that releases actually
  // repair something, and exercises the blocking/rollback path.
  sim.max_wavelengths = static_cast<int>(args.get_int("max-wavelengths", 12));
  sim.check_bound = true;
  sim.collect_latency = true;

  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const double min_time = args.get_double("min-time", 0.0);
  const std::string out_path = args.get("out", "BENCH_churn.json");

  const DemandScript script = generate_script(traffic);

  std::cout << "== Dynamic churn: " << traffic.arrivals << " arrivals ("
            << script.events.size() << " events), ring=" << traffic.ring_size
            << " k=" << sim.k << " max_wavelengths=" << sim.max_wavelengths
            << " ==\n\n";

  std::vector<Measurement> measurements;
  for (bool repair : {true, false}) {
    sim.repair = repair;
    for (int i = 0; i < warmup; ++i) simulate_script(script, sim);
    Measurement m;
    m.mode = repair ? "repair" : "norepair";
    int passes = 0;
    long long digest = 0;
    do {
      Stopwatch watch;
      SimResult result = simulate_script(script, sim);
      m.seconds += watch.elapsed_seconds();
      ++passes;
      if (!result.bound_ok) {
        std::cerr << "FAIL: Prop-2 fragment bound violated (mode=" << m.mode
                  << ")\n";
        return 1;
      }
      const long long sum = outcome_checksum(result);
      if (passes > 1 && sum != digest) {
        std::cerr << "FAIL: outcome differs across passes (mode=" << m.mode
                  << ")\n";
        return 1;
      }
      digest = sum;
      m.result = result;
    } while (m.seconds < min_time);
    m.events_per_sec =
        static_cast<double>(script.events.size()) * passes / m.seconds;
    measurements.push_back(m);
  }

  TextTable table("dynamic churn (outcome bit-identical across passes)");
  table.set_header({"mode", "seconds", "events/sec", "blocking", "repairs",
                    "peak waves", "release p99 us"});
  for (const Measurement& m : measurements) {
    table.add_row(
        {m.mode, TextTable::num(m.seconds, 3),
         TextTable::num(m.events_per_sec, 1),
         TextTable::num(m.result.blocking_rate * 100.0, 2) + "%",
         TextTable::num(m.result.repair_moves),
         TextTable::num(static_cast<long long>(m.result.peak_wavelengths)),
         TextTable::num(m.result.release_latency.p99_us, 1)});
  }
  table.print(std::cout);

  if (!write_json(out_path, traffic, sim, script.events.size(),
                  measurements)) {
    std::cerr << "FAIL: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nresults written to " << out_path << "\n";
  return 0;
}
