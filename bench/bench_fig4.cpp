// FIG4 — reproduces the paper's Figure 4: SADM counts vs grooming factor
// for random traffic graphs of n = 36 nodes at three dense ratios,
// comparing Algo 1 [9], Algo 2 [3], Algo 3 [19] and SpanT_Euler.
//
// Prints the reproduction tables first (with CSV export), then runs
// google-benchmark timings of the four algorithms on the middle workload.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_support/report.hpp"
#include "bench_support/sweep.hpp"
#include "util/cli.hpp"

namespace {

using namespace tgroom;

void print_fig4(const CliArgs& args) {
  SweepConfig config;
  config.seeds = static_cast<int>(args.get_int("seeds", 20));
  config.grooming_factors =
      args.get_int_list("k", {4, 8, 12, 16, 20, 24, 28, 32, 40, 48});
  config.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  const auto n = static_cast<NodeId>(args.get_int("n", 36));

  std::cout << "== Figure 4 reproduction: SADMs vs grooming factor, "
               "random traffic graphs ==\n\n";
  for (double d : {0.3, 0.5, 0.8}) {
    SweepResult result =
        run_sweep(WorkloadSpec::dense(n, d), figure4_algorithms(), config);
    sweep_table(result, "Figure 4, dense ratio d=" + TextTable::num(d, 1))
        .print(std::cout);
    std::cout << '\n';
    write_sweep_csv(result,
                    "fig4_d" + std::to_string(static_cast<int>(d * 10)) +
                        ".csv");
  }
  std::cout << "series exported to fig4_d{3,5,8}.csv\n\n";
}

void timing_case(benchmark::State& state, AlgorithmId id, double dense) {
  Rng rng(1234);
  Graph g = make_workload(WorkloadSpec::dense(36, dense), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm(id, g, 16));
  }
  state.counters["edges"] = static_cast<double>(g.edge_count());
}

void register_timings() {
  for (AlgorithmId id : figure4_algorithms()) {
    for (double d : {0.3, 0.8}) {
      std::string name = std::string("fig4_time/") + algorithm_name(id) +
                         "/d=" + TextTable::num(d, 1);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [id, d](benchmark::State& state) { timing_case(state, id, d); });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  print_fig4(args);
  register_timings();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
