// CLUSTER — routed throughput: requests/sec through the `tgroom route`
// front-end as the shard count behind it varies, against the same
// workload served by one node directly.  Three rows:
//
//   direct  / 1 shard   clients -> one event-loop node (no router)
//   routed  / 1 shard   clients -> router -> one node (router overhead)
//   routed  / 2 shards  clients -> router -> two nodes (aggregate)
//
// The direct-vs-routed-1 gap is what forwarding costs (one extra hop,
// id splice, in-flight table); routed-2 vs routed-1 is what sharding
// buys.  On a single-core host the 2-shard row cannot exceed 1x — the
// shards and the router time-slice one CPU — so read the scaling column
// against the "cpus" field in BENCH_cluster.json, same caveat as
// BENCH_service.json's worker sweep.  The request stream is stateless
// grooms plus inline provisions (reads, no held plans), so every line
// routes by content hash and the shards split the cache-primed load.
// Linux-only (epoll front-end); elsewhere it prints a note and emits an
// empty runs array.  Emits BENCH_cluster.json for scripts/bench_compare.py.
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

#if defined(__linux__)

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "algorithms/algorithm.hpp"
#include "cluster/router.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/plan.hpp"
#include "service/event_loop.hpp"
#include "service/server.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

struct Measurement {
  std::string mode;       // "direct" | "routed"
  std::size_t shards = 1;
  std::size_t connections = 0;
  int pipeline = 1;
  double warm_seconds = 0;
  double warm_rps = 0;
};

// Mixed stateless stream, same shape as bench_service's: 3:1 grooms to
// inline provisions, over a pool of distinct graphs so the router
// spreads by fingerprint and each shard's cache holds its share.
std::string build_stream(int requests, int graphs, NodeId n, int k) {
  std::vector<Graph> pool;
  std::vector<GroomingPlan> plans;
  for (int i = 0; i < graphs; ++i) {
    Rng rng(static_cast<std::uint64_t>(7 + i));
    pool.push_back(random_traffic(n, 0.5, rng).traffic_graph());
    EdgePartition partition =
        run_algorithm(AlgorithmId::kSpanTEuler, pool.back(), k);
    plans.push_back(plan_from_partition(
        DemandSet::from_traffic_graph(pool.back()), pool.back(), partition));
  }
  std::string stream;
  for (int i = 0; i < requests; ++i) {
    const std::size_t gi = static_cast<std::size_t>(i % graphs);
    JsonWriter w;
    w.begin_object();
    if (i % 4 != 3) {
      w.kv("op", "groom");
      w.kv("id", static_cast<long long>(i));
      w.key("graph");
      write_graph_json(w, pool[gi]);
      w.kv("k", static_cast<long long>(k));
      w.kv("seed", std::uint64_t{1});
    } else {
      w.kv("op", "provision");
      w.kv("id", static_cast<long long>(i));
      w.key("plan");
      write_plan_json(w, plans[gi]);
      const NodeId a = static_cast<NodeId>(i % (n - 1));
      w.key("add")
          .begin_array()
          .begin_array()
          .value(static_cast<long long>(a))
          .value(static_cast<long long>(a + 1))
          .end_array()
          .end_array();
    }
    w.end_object();
    stream += w.take();
    stream += '\n';
  }
  return stream;
}

struct ClientSlice {
  std::string bytes;
  std::vector<std::size_t> ends;
};

std::vector<ClientSlice> split_stream(const std::string& stream,
                                      std::size_t conns) {
  std::vector<ClientSlice> slices(conns);
  std::size_t begin = 0, i = 0;
  while (begin < stream.size()) {
    const std::size_t nl = stream.find('\n', begin);
    ClientSlice& s = slices[i++ % conns];
    s.bytes.append(stream, begin, nl - begin + 1);
    s.ends.push_back(s.bytes.size());
    begin = nl + 1;
  }
  return slices;
}

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    std::cerr << "cluster bench: connect to 127.0.0.1:" << port
              << " failed\n";
    std::exit(1);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      std::cerr << "cluster bench: send failed\n";
      std::exit(1);
    }
    off += static_cast<std::size_t>(n);
  }
}

void drive_client(int port, const ClientSlice& slice, int pipeline) {
  const std::size_t total = slice.ends.size();
  if (total == 0) return;
  const int fd = connect_loopback(port);
  std::size_t sent = 0, got = 0;
  char buf[64 * 1024];
  while (got < total) {
    const std::size_t target =
        std::min(total, got + static_cast<std::size_t>(pipeline));
    if (sent < target) {
      const std::size_t from = sent == 0 ? 0 : slice.ends[sent - 1];
      send_all(fd, slice.bytes.data() + from, slice.ends[target - 1] - from);
      sent = target;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      std::cerr << "cluster bench: connection lost after " << got << " of "
                << total << " responses\n";
      std::exit(1);
    }
    for (ssize_t j = 0; j < n; ++j) got += buf[j] == '\n' ? 1u : 0u;
  }
  ::close(fd);
}

double pass(int port, const std::vector<ClientSlice>& slices,
            int pipeline) {
  Stopwatch timer;
  std::vector<std::thread> clients;
  clients.reserve(slices.size());
  for (const ClientSlice& s : slices) {
    clients.emplace_back(
        [port, &s, pipeline] { drive_client(port, s, pipeline); });
  }
  for (std::thread& t : clients) t.join();
  return timer.elapsed_seconds();
}

struct TimedRun {
  double seconds = 0;
  int passes = 0;
};

template <typename F>
TimedRun measure(double min_time, F&& one_pass) {
  TimedRun r;
  do {
    r.seconds += one_pass();
    ++r.passes;
  } while (r.seconds < min_time);
  return r;
}

/// One shard node on its own thread and ephemeral port.
struct ShardNode {
  GroomingService service;
  EventLoopServer server;
  std::ostringstream log;
  std::thread thread;

  static ServiceConfig make_config(std::size_t workers, int requests,
                                   std::size_t cache_capacity) {
    ServiceConfig config;
    config.workers = workers;
    config.queue_capacity = static_cast<std::size_t>(requests) + 1;
    config.cache_capacity = cache_capacity;
    config.metrics_on_exit = false;
    return config;
  }

  ShardNode(std::size_t workers, int requests, std::size_t cache_capacity)
      : service(make_config(workers, requests, cache_capacity)),
        server(service, EventLoopConfig{}) {
    if (!server.valid()) {
      std::cerr << "cluster bench: " << server.error() << "\n";
      std::exit(1);
    }
    thread = std::thread([this] { server.run(log); });
  }
};

void shutdown_port(int port) {
  const int fd = connect_loopback(port);
  static const char kShutdown[] = "{\"op\":\"shutdown\"}\n";
  send_all(fd, kShutdown, sizeof(kShutdown) - 1);
  char buf[4096];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);
}

/// A full routed cluster: `shard_count` single-member groups plus the
/// router front-end, all in-process.  Shutdown through the router drains
/// the shards too.
struct RoutedCluster {
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::unique_ptr<cluster::ClusterRouter> router;
  std::unique_ptr<EventLoopServer> front;
  std::ostringstream log;
  std::thread thread;

  RoutedCluster(std::size_t shard_count, std::size_t node_workers,
                std::size_t router_workers, int requests,
                std::size_t cache_capacity) {
    cluster::RouterConfig config;
    for (std::size_t s = 0; s < shard_count; ++s) {
      nodes.push_back(std::make_unique<ShardNode>(node_workers, requests,
                                                  cache_capacity));
      cluster::ShardSpec spec;
      spec.members.push_back(
          cluster::BackendAddress{"127.0.0.1", nodes.back()->server.port()});
      config.map.shards.push_back(std::move(spec));
    }
    config.workers = router_workers;
    config.queue_capacity = static_cast<std::size_t>(requests) + 1;
    config.metrics_on_exit = false;
    GroomingService::clear_stop();
    router = std::make_unique<cluster::ClusterRouter>(config);
    std::string error;
    if (!router->start(log, error)) {
      std::cerr << "cluster bench: " << error << "\n";
      std::exit(1);
    }
    front = std::make_unique<EventLoopServer>(*router, EventLoopConfig{});
    if (!front->valid()) {
      std::cerr << "cluster bench: " << front->error() << "\n";
      std::exit(1);
    }
    thread = std::thread([this] { front->run(log); });
  }

  int port() const { return front->port(); }

  void shutdown() {
    shutdown_port(port());
    thread.join();
    for (auto& node : nodes) node->thread.join();
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int requests = static_cast<int>(args.get_int("requests", 2000));
  const auto n = static_cast<NodeId>(args.get_int("n", 16));
  const int k = static_cast<int>(args.get_int("k", 8));
  const int graphs = static_cast<int>(args.get_int("graphs", 32));
  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const double min_time = args.get_double("min-time", 0.0);
  const int connections = static_cast<int>(args.get_int("connections", 4));
  const int pipeline =
      std::max(1, static_cast<int>(args.get_int("pipeline", 16)));
  const auto node_workers =
      static_cast<std::size_t>(args.get_int("workers", 2));
  const auto router_workers =
      static_cast<std::size_t>(args.get_int("router-workers", 4));
  const std::string json_path = args.get("json", "BENCH_cluster.json");

  const std::string stream = build_stream(requests, graphs, n, k);
  const std::vector<ClientSlice> slices =
      split_stream(stream, static_cast<std::size_t>(connections));
  const std::size_t cache = static_cast<std::size_t>(graphs) * 2;
  std::cout << "cluster bench: " << requests << " requests, " << graphs
            << " graphs, n=" << n << ", k=" << k << ", " << connections
            << " connections x pipeline " << pipeline << "\n\n";

  std::vector<Measurement> measurements;
  const auto record = [&](const std::string& mode, std::size_t shards,
                          int port, auto&& teardown) {
    for (int i = 0; i < std::max(1, warmup); ++i) {
      pass(port, slices, pipeline);  // prime every shard's cache
    }
    TimedRun warm =
        measure(min_time, [&] { return pass(port, slices, pipeline); });
    teardown();
    Measurement m;
    m.mode = mode;
    m.shards = shards;
    m.connections = static_cast<std::size_t>(connections);
    m.pipeline = pipeline;
    m.warm_seconds = warm.seconds;
    m.warm_rps = static_cast<double>(requests) * warm.passes / warm.seconds;
    measurements.push_back(m);
  };

  {
    ShardNode direct(node_workers, requests, cache);
    record("direct", 1, direct.server.port(), [&] {
      shutdown_port(direct.server.port());
      direct.thread.join();
    });
  }
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    RoutedCluster routed(shards, node_workers, router_workers, requests,
                         cache);
    record("routed", shards, routed.port(), [&] { routed.shutdown(); });
  }

  TextTable table("cluster throughput (warm caches)");
  table.set_header({"mode", "shards", "req/s", "vs direct"});
  const double base = measurements[0].warm_rps;
  for (const Measurement& m : measurements) {
    table.add_row({m.mode, TextTable::num(static_cast<long long>(m.shards)),
                   TextTable::num(m.warm_rps, 0),
                   TextTable::num(m.warm_rps / base, 2)});
  }
  table.print(std::cout);

  std::ofstream out(json_path);
  JsonWriter w;
  w.begin_object();
  w.kv("benchmark", "cluster_throughput");
  w.kv("cpus",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("workload").begin_object();
  w.kv("requests", static_cast<long long>(requests));
  w.kv("graphs", static_cast<long long>(graphs));
  w.kv("n", static_cast<long long>(n));
  w.kv("k", static_cast<long long>(k));
  w.end_object();
  w.key("runs").begin_array();
  for (const Measurement& m : measurements) {
    w.begin_object();
    w.kv("mode", m.mode);
    w.kv("shards", static_cast<std::uint64_t>(m.shards));
    w.kv("workers", static_cast<std::uint64_t>(node_workers));
    w.kv("connections", static_cast<std::uint64_t>(m.connections));
    w.kv("pipeline", static_cast<long long>(m.pipeline));
    w.kv("warm_seconds", m.warm_seconds);
    w.kv("warm_rps", m.warm_rps);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << w.take() << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

#else  // !__linux__

int main(int argc, char** argv) {
  tgroom::CliArgs args(argc, argv);
  const std::string json_path = args.get("json", "BENCH_cluster.json");
  std::cout << "cluster bench: needs Linux (epoll front-end); skipped\n";
  std::ofstream out(json_path);
  out << "{\"benchmark\":\"cluster_throughput\",\"runs\":[]}\n";
  return 0;
}

#endif
