// SERVICE — end-to-end NDJSON daemon throughput: requests/sec through
// GroomingService::run() as worker count varies, on a mixed groom +
// provision request stream.  Measures the whole service path (parse,
// admission, dispatch, compute, serialize) rather than the bare
// algorithms, so it exposes protocol and locking overhead.  A second pass
// over the same stream isolates the LRU cache: every groom repeats, so the
// cached requests/sec gives the protocol-only ceiling.  Emits
// BENCH_service.json for CI artifact upload.  Plain main for the same
// reason as bench_throughput: wall clock over a fixed stream is the
// quantity of interest.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/plan.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

#if defined(__linux__)
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/event_loop.hpp"
#endif

namespace {

using namespace tgroom;

struct Measurement {
  std::size_t workers = 0;
  double cold_seconds = 0;
  double cold_rps = 0;
  double warm_seconds = 0;  // same stream again: grooms hit the cache
  double warm_rps = 0;
};

std::string build_stream(int requests, int graphs, NodeId n, int k) {
  std::vector<Graph> pool;
  std::vector<GroomingPlan> plans;
  for (int i = 0; i < graphs; ++i) {
    Rng rng(static_cast<std::uint64_t>(7 + i));
    pool.push_back(random_traffic(n, 0.5, rng).traffic_graph());
    EdgePartition partition =
        run_algorithm(AlgorithmId::kSpanTEuler, pool.back(), k);
    plans.push_back(plan_from_partition(
        DemandSet::from_traffic_graph(pool.back()), pool.back(), partition));
  }
  std::string stream;
  for (int i = 0; i < requests; ++i) {
    const std::size_t gi = static_cast<std::size_t>(i % graphs);
    JsonWriter w;
    w.begin_object();
    if (i % 4 != 3) {  // 3:1 groom:provision mix
      w.kv("op", "groom");
      w.kv("id", static_cast<long long>(i));
      w.key("graph");
      write_graph_json(w, pool[gi]);
      w.kv("k", static_cast<long long>(k));
      w.kv("seed", std::uint64_t{1});
    } else {
      w.kv("op", "provision");
      w.kv("id", static_cast<long long>(i));
      w.key("plan");
      write_plan_json(w, plans[gi]);
      const NodeId a = static_cast<NodeId>(i % (n - 1));
      w.key("add")
          .begin_array()
          .begin_array()
          .value(static_cast<long long>(a))
          .value(static_cast<long long>(a + 1))
          .end_array()
          .end_array();
    }
    w.end_object();
    stream += w.take();
    stream += '\n';
  }
  return stream;
}

// Repeats a timed pass until the accumulated measured time reaches
// min_time (always at least one pass), so short streams still produce a
// stable rate on noisy machines.
struct TimedRun {
  double seconds = 0;
  int passes = 0;
};

template <typename F>
TimedRun measure(double min_time, F&& pass) {
  TimedRun r;
  do {
    r.seconds += pass();
    ++r.passes;
  } while (r.seconds < min_time);
  return r;
}

#if defined(__linux__)

// ---- TCP mode: drive the epoll event loop over real loopback sockets.

struct TcpMeasurement {
  std::size_t connections = 0;
  int pipeline = 1;
  double cold_seconds = 0;
  double cold_rps = 0;
  double warm_seconds = 0;
  double warm_rps = 0;
};

// One client's share of the request stream: its lines joined into a
// single buffer plus the offset just past each line's newline, so a
// pipeline window refill is one send() over a contiguous range.
struct ClientSlice {
  std::string bytes;
  std::vector<std::size_t> ends;
};

std::vector<ClientSlice> split_stream(const std::string& stream,
                                      std::size_t conns) {
  std::vector<ClientSlice> slices(conns);
  std::size_t begin = 0, i = 0;
  while (begin < stream.size()) {
    const std::size_t nl = stream.find('\n', begin);
    ClientSlice& s = slices[i++ % conns];
    s.bytes.append(stream, begin, nl - begin + 1);
    s.ends.push_back(s.bytes.size());
    begin = nl + 1;
  }
  return slices;
}

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    std::cerr << "tcp bench: connect to 127.0.0.1:" << port << " failed\n";
    std::exit(1);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      std::cerr << "tcp bench: send failed\n";
      std::exit(1);
    }
    off += static_cast<std::size_t>(n);
  }
}

// Sends the slice keeping at most `pipeline` requests outstanding and
// returns once every response line came back.  Window refills are a
// single send() (that is what pipelining buys: one syscall, and one
// server-side read, for many requests).
void drive_client(int port, const ClientSlice& slice, int pipeline) {
  const std::size_t total = slice.ends.size();
  if (total == 0) return;
  const int fd = connect_loopback(port);
  std::size_t sent = 0, got = 0;
  char buf[64 * 1024];
  while (got < total) {
    const std::size_t target =
        std::min(total, got + static_cast<std::size_t>(pipeline));
    if (sent < target) {
      const std::size_t from = sent == 0 ? 0 : slice.ends[sent - 1];
      send_all(fd, slice.bytes.data() + from, slice.ends[target - 1] - from);
      sent = target;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      std::cerr << "tcp bench: connection lost after " << got << " of "
                << total << " responses\n";
      std::exit(1);
    }
    for (ssize_t j = 0; j < n; ++j) got += buf[j] == '\n' ? 1u : 0u;
  }
  ::close(fd);
}

// One timed pass: all clients connect, pump their slices, disconnect.
double tcp_pass(int port, const std::vector<ClientSlice>& slices,
                int pipeline) {
  Stopwatch timer;
  std::vector<std::thread> clients;
  clients.reserve(slices.size());
  for (const ClientSlice& s : slices) {
    clients.emplace_back([port, &s, pipeline] {
      drive_client(port, s, pipeline);
    });
  }
  for (std::thread& t : clients) t.join();
  return timer.elapsed_seconds();
}

// An in-process server on an ephemeral port, torn down by a real
// `shutdown` request so the bench exercises the drain path it ships.
struct TcpServer {
  GroomingService service;
  EventLoopServer server;
  std::ostringstream log;
  std::thread thread;

  static ServiceConfig make_config(std::size_t workers, int requests,
                                   std::size_t cache_capacity) {
    ServiceConfig config;
    config.workers = workers;
    config.queue_capacity = static_cast<std::size_t>(requests) + 1;
    config.cache_capacity = cache_capacity;
    config.metrics_on_exit = false;
    return config;
  }

  TcpServer(std::size_t workers, int requests, std::size_t cache_capacity)
      : service(make_config(workers, requests, cache_capacity)),
        server(service, EventLoopConfig{}) {
    if (!server.valid()) {
      std::cerr << "tcp bench: " << server.error() << "\n";
      std::exit(1);
    }
    thread = std::thread([this] { server.run(log); });
  }

  void shutdown() {
    const int fd = connect_loopback(server.port());
    static const char kShutdown[] = "{\"op\":\"shutdown\"}\n";
    send_all(fd, kShutdown, sizeof(kShutdown) - 1);
    char buf[4096];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);
    thread.join();
  }
};

#endif  // defined(__linux__)

double run_once(const std::string& stream, std::size_t workers,
                std::size_t cache_capacity, int requests) {
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = static_cast<std::size_t>(requests) + 1;
  config.cache_capacity = cache_capacity;
  config.metrics_on_exit = false;
  GroomingService service(config);
  std::istringstream in(stream);
  std::ostringstream out;
  Stopwatch timer;
  service.run(in, out);
  double seconds = timer.elapsed_seconds();
  if (service.metrics().count(ServiceMetrics::Counter::kOk) != requests) {
    std::cerr << "BUG: only "
              << service.metrics().count(ServiceMetrics::Counter::kOk)
              << " of " << requests << " requests succeeded\n";
    std::exit(1);
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int requests = static_cast<int>(args.get_int("requests", 2000));
  const auto n = static_cast<NodeId>(args.get_int("n", 24));
  const int k = static_cast<int>(args.get_int("k", 8));
  const int graphs = static_cast<int>(args.get_int("graphs", 32));
  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const double min_time = args.get_double("min-time", 0.0);
  const std::string json_path = args.get("json", "BENCH_service.json");
  // TCP mode: sweep client connection counts against the epoll event loop
  // (0 = skip).  `--pipeline` is the per-connection window of outstanding
  // requests; `--workers` the server worker-pool size for the TCP rows.
  const int connections = static_cast<int>(args.get_int("connections", 0));
  const int pipeline =
      std::max(1, static_cast<int>(args.get_int("pipeline", 8)));
  const auto tcp_workers =
      static_cast<std::size_t>(args.get_int("workers", 8));

  const std::string stream = build_stream(requests, graphs, n, k);
  std::cout << "service bench: " << requests << " requests, " << graphs
            << " graphs, n=" << n << ", k=" << k << ", stream "
            << stream.size() / 1024 << " KiB\n\n";

  std::vector<Measurement> measurements;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
    Measurement m;
    m.workers = workers;
    // Cold: cache disabled, every groom pays full compute.  A fresh
    // service per pass keeps every pass genuinely cold.
    for (int i = 0; i < warmup; ++i) run_once(stream, workers, 0, requests);
    TimedRun cold = measure(min_time, [&] {
      return run_once(stream, workers, 0, requests);
    });
    m.cold_seconds = cold.seconds;
    m.cold_rps =
        static_cast<double>(requests) * cold.passes / cold.seconds;
    // Warm: one long-lived service, cache big enough that each distinct
    // groom computes once; priming passes also serve as warm-up.
    {
      ServiceConfig config;
      config.workers = workers;
      config.queue_capacity = static_cast<std::size_t>(requests) + 1;
      config.cache_capacity = static_cast<std::size_t>(graphs) * 2;
      config.metrics_on_exit = false;
      GroomingService service(config);
      for (int i = 0; i < std::max(1, warmup); ++i) {
        std::istringstream prime(stream);
        std::ostringstream sink;
        service.run(prime, sink);  // populate the cache
      }
      TimedRun warm = measure(min_time, [&] {
        std::istringstream in(stream);
        std::ostringstream out;
        Stopwatch timer;
        service.run(in, out);
        return timer.elapsed_seconds();
      });
      m.warm_seconds = warm.seconds;
      m.warm_rps =
          static_cast<double>(requests) * warm.passes / warm.seconds;
    }
    measurements.push_back(m);
  }

  TextTable table("service throughput (cold = cache off, warm = all hits)");
  table.set_header({"workers", "cold req/s", "warm req/s", "speedup"});
  const double base = measurements[0].cold_rps;
  for (const Measurement& m : measurements) {
    table.add_row({TextTable::num(static_cast<long long>(m.workers)),
                   TextTable::num(m.cold_rps, 0), TextTable::num(m.warm_rps, 0),
                   TextTable::num(m.cold_rps / base, 2)});
  }
  table.print(std::cout);

#if defined(__linux__)
  std::vector<TcpMeasurement> tcp_measurements;
  if (connections > 0) {
    // Row (1,1) is the serial baseline: one RTT-bound client, the
    // behavior of the old single-connection accept loop.  Then double the
    // connection count at the requested pipeline depth.
    std::vector<std::pair<int, int>> rows;
    rows.emplace_back(1, 1);
    for (int c = 1; c <= connections; c *= 2) {
      if (c != 1 || pipeline != 1) rows.emplace_back(c, pipeline);
      if (c < connections && c * 2 > connections) {
        rows.emplace_back(connections, pipeline);
        break;
      }
    }
    for (const auto& [conns, depth] : rows) {
      const std::vector<ClientSlice> slices =
          split_stream(stream, static_cast<std::size_t>(conns));
      TcpMeasurement m;
      m.connections = static_cast<std::size_t>(conns);
      m.pipeline = depth;
      // Cold: fresh server (cache off) per pass.
      const auto cold_pass = [&] {
        TcpServer srv(tcp_workers, requests, 0);
        const double seconds = tcp_pass(srv.server.port(), slices, depth);
        srv.shutdown();
        return seconds;
      };
      for (int i = 0; i < warmup; ++i) cold_pass();
      TimedRun cold = measure(min_time, cold_pass);
      m.cold_seconds = cold.seconds;
      m.cold_rps =
          static_cast<double>(requests) * cold.passes / cold.seconds;
      // Warm: one long-lived server, cache primed by the warm-up passes.
      {
        TcpServer srv(tcp_workers, requests,
                      static_cast<std::size_t>(graphs) * 2);
        for (int i = 0; i < std::max(1, warmup); ++i) {
          tcp_pass(srv.server.port(), slices, depth);
        }
        TimedRun warm = measure(min_time, [&] {
          return tcp_pass(srv.server.port(), slices, depth);
        });
        m.warm_seconds = warm.seconds;
        m.warm_rps =
            static_cast<double>(requests) * warm.passes / warm.seconds;
        srv.shutdown();
      }
      tcp_measurements.push_back(m);
    }

    std::cout << "\n";
    TextTable tcp_table("event-loop TCP throughput (workers=" +
                        std::to_string(tcp_workers) + ")");
    tcp_table.set_header(
        {"conns", "pipeline", "cold req/s", "warm req/s", "speedup"});
    const double tcp_base = tcp_measurements[0].warm_rps;
    for (const TcpMeasurement& m : tcp_measurements) {
      tcp_table.add_row(
          {TextTable::num(static_cast<long long>(m.connections)),
           TextTable::num(static_cast<long long>(m.pipeline)),
           TextTable::num(m.cold_rps, 0), TextTable::num(m.warm_rps, 0),
           TextTable::num(m.warm_rps / tcp_base, 2)});
    }
    tcp_table.print(std::cout);
  }
#else
  (void)pipeline;
  (void)tcp_workers;
  if (connections > 0) {
    std::cout << "\n--connections: TCP mode needs Linux (epoll); skipped\n";
  }
#endif

  std::ofstream out(json_path);
  JsonWriter w;
  w.begin_object();
  w.kv("benchmark", "service_throughput");
  // Worker counts above this are oversubscription, not parallelism —
  // read the scaling columns against it.
  w.kv("cpus",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("workload").begin_object();
  w.kv("requests", static_cast<long long>(requests));
  w.kv("graphs", static_cast<long long>(graphs));
  w.kv("n", static_cast<long long>(n));
  w.kv("k", static_cast<long long>(k));
  w.end_object();
  w.key("runs").begin_array();
  for (const Measurement& m : measurements) {
    w.begin_object();
    w.kv("workers", static_cast<std::uint64_t>(m.workers));
    w.kv("cold_seconds", m.cold_seconds);
    w.kv("cold_rps", m.cold_rps);
    w.kv("warm_seconds", m.warm_seconds);
    w.kv("warm_rps", m.warm_rps);
    w.end_object();
  }
#if defined(__linux__)
  for (const TcpMeasurement& m : tcp_measurements) {
    w.begin_object();
    w.kv("mode", "tcp");
    w.kv("workers", static_cast<std::uint64_t>(tcp_workers));
    w.kv("connections", static_cast<std::uint64_t>(m.connections));
    w.kv("pipeline", static_cast<long long>(m.pipeline));
    w.kv("cold_seconds", m.cold_seconds);
    w.kv("cold_rps", m.cold_rps);
    w.kv("warm_seconds", m.warm_seconds);
    w.kv("warm_rps", m.warm_rps);
    w.end_object();
  }
#endif
  w.end_array();
  w.end_object();
  out << w.str() << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
