// SERVICE — end-to-end NDJSON daemon throughput: requests/sec through
// GroomingService::run() as worker count varies, on a mixed groom +
// provision request stream.  Measures the whole service path (parse,
// admission, dispatch, compute, serialize) rather than the bare
// algorithms, so it exposes protocol and locking overhead.  A second pass
// over the same stream isolates the LRU cache: every groom repeats, so the
// cached requests/sec gives the protocol-only ceiling.  Emits
// BENCH_service.json for CI artifact upload.  Plain main for the same
// reason as bench_throughput: wall clock over a fixed stream is the
// quantity of interest.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/plan.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

struct Measurement {
  std::size_t workers = 0;
  double cold_seconds = 0;
  double cold_rps = 0;
  double warm_seconds = 0;  // same stream again: grooms hit the cache
  double warm_rps = 0;
};

std::string build_stream(int requests, int graphs, NodeId n, int k) {
  std::vector<Graph> pool;
  std::vector<GroomingPlan> plans;
  for (int i = 0; i < graphs; ++i) {
    Rng rng(static_cast<std::uint64_t>(7 + i));
    pool.push_back(random_traffic(n, 0.5, rng).traffic_graph());
    EdgePartition partition =
        run_algorithm(AlgorithmId::kSpanTEuler, pool.back(), k);
    plans.push_back(plan_from_partition(
        DemandSet::from_traffic_graph(pool.back()), pool.back(), partition));
  }
  std::string stream;
  for (int i = 0; i < requests; ++i) {
    const std::size_t gi = static_cast<std::size_t>(i % graphs);
    JsonWriter w;
    w.begin_object();
    if (i % 4 != 3) {  // 3:1 groom:provision mix
      w.kv("op", "groom");
      w.kv("id", static_cast<long long>(i));
      w.key("graph");
      write_graph_json(w, pool[gi]);
      w.kv("k", static_cast<long long>(k));
      w.kv("seed", std::uint64_t{1});
    } else {
      w.kv("op", "provision");
      w.kv("id", static_cast<long long>(i));
      w.key("plan");
      write_plan_json(w, plans[gi]);
      const NodeId a = static_cast<NodeId>(i % (n - 1));
      w.key("add")
          .begin_array()
          .begin_array()
          .value(static_cast<long long>(a))
          .value(static_cast<long long>(a + 1))
          .end_array()
          .end_array();
    }
    w.end_object();
    stream += w.take();
    stream += '\n';
  }
  return stream;
}

// Repeats a timed pass until the accumulated measured time reaches
// min_time (always at least one pass), so short streams still produce a
// stable rate on noisy machines.
struct TimedRun {
  double seconds = 0;
  int passes = 0;
};

template <typename F>
TimedRun measure(double min_time, F&& pass) {
  TimedRun r;
  do {
    r.seconds += pass();
    ++r.passes;
  } while (r.seconds < min_time);
  return r;
}

double run_once(const std::string& stream, std::size_t workers,
                std::size_t cache_capacity, int requests) {
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = static_cast<std::size_t>(requests) + 1;
  config.cache_capacity = cache_capacity;
  config.metrics_on_exit = false;
  GroomingService service(config);
  std::istringstream in(stream);
  std::ostringstream out;
  Stopwatch timer;
  service.run(in, out);
  double seconds = timer.elapsed_seconds();
  if (service.metrics().count(ServiceMetrics::Counter::kOk) != requests) {
    std::cerr << "BUG: only "
              << service.metrics().count(ServiceMetrics::Counter::kOk)
              << " of " << requests << " requests succeeded\n";
    std::exit(1);
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int requests = static_cast<int>(args.get_int("requests", 2000));
  const auto n = static_cast<NodeId>(args.get_int("n", 24));
  const int k = static_cast<int>(args.get_int("k", 8));
  const int graphs = static_cast<int>(args.get_int("graphs", 32));
  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const double min_time = args.get_double("min-time", 0.0);
  const std::string json_path = args.get("json", "BENCH_service.json");

  const std::string stream = build_stream(requests, graphs, n, k);
  std::cout << "service bench: " << requests << " requests, " << graphs
            << " graphs, n=" << n << ", k=" << k << ", stream "
            << stream.size() / 1024 << " KiB\n\n";

  std::vector<Measurement> measurements;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
    Measurement m;
    m.workers = workers;
    // Cold: cache disabled, every groom pays full compute.  A fresh
    // service per pass keeps every pass genuinely cold.
    for (int i = 0; i < warmup; ++i) run_once(stream, workers, 0, requests);
    TimedRun cold = measure(min_time, [&] {
      return run_once(stream, workers, 0, requests);
    });
    m.cold_seconds = cold.seconds;
    m.cold_rps =
        static_cast<double>(requests) * cold.passes / cold.seconds;
    // Warm: one long-lived service, cache big enough that each distinct
    // groom computes once; priming passes also serve as warm-up.
    {
      ServiceConfig config;
      config.workers = workers;
      config.queue_capacity = static_cast<std::size_t>(requests) + 1;
      config.cache_capacity = static_cast<std::size_t>(graphs) * 2;
      config.metrics_on_exit = false;
      GroomingService service(config);
      for (int i = 0; i < std::max(1, warmup); ++i) {
        std::istringstream prime(stream);
        std::ostringstream sink;
        service.run(prime, sink);  // populate the cache
      }
      TimedRun warm = measure(min_time, [&] {
        std::istringstream in(stream);
        std::ostringstream out;
        Stopwatch timer;
        service.run(in, out);
        return timer.elapsed_seconds();
      });
      m.warm_seconds = warm.seconds;
      m.warm_rps =
          static_cast<double>(requests) * warm.passes / warm.seconds;
    }
    measurements.push_back(m);
  }

  TextTable table("service throughput (cold = cache off, warm = all hits)");
  table.set_header({"workers", "cold req/s", "warm req/s", "speedup"});
  const double base = measurements[0].cold_rps;
  for (const Measurement& m : measurements) {
    table.add_row({TextTable::num(static_cast<long long>(m.workers)),
                   TextTable::num(m.cold_rps, 0), TextTable::num(m.warm_rps, 0),
                   TextTable::num(m.cold_rps / base, 2)});
  }
  table.print(std::cout);

  std::ofstream out(json_path);
  JsonWriter w;
  w.begin_object();
  w.kv("benchmark", "service_throughput");
  w.key("workload").begin_object();
  w.kv("requests", static_cast<long long>(requests));
  w.kv("graphs", static_cast<long long>(graphs));
  w.kv("n", static_cast<long long>(n));
  w.kv("k", static_cast<long long>(k));
  w.end_object();
  w.key("runs").begin_array();
  for (const Measurement& m : measurements) {
    w.begin_object();
    w.kv("workers", static_cast<std::uint64_t>(m.workers));
    w.kv("cold_seconds", m.cold_seconds);
    w.kv("cold_rps", m.cold_rps);
    w.kv("warm_seconds", m.warm_seconds);
    w.kv("warm_rps", m.warm_rps);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << w.str() << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
