// RUNTIME — the paper's complexity claims as measurements:
//   §3: SpanT_Euler runs in O(m) (linear) time;
//   §4: Regular_Euler runs in O(sqrt(V) * m) dominated by the matching
//       (our blossom is O(V^3)-ish, documented in DESIGN.md);
//   baselines for scale context.
// google-benchmark sweeps the instance size so the complexity exponent can
// be read off the reported Big-O fit.
#include <benchmark/benchmark.h>

#include "algorithms/algorithm.hpp"
#include "algorithms/workspace.hpp"
#include "bench_support/workload.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"

namespace {

using namespace tgroom;

void run_on_random(benchmark::State& state, AlgorithmId id) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(static_cast<std::uint64_t>(n));
  // Average degree fixed at 12 so m scales linearly with n.
  long long m = std::min<long long>(6LL * n,
                                    static_cast<long long>(n) * (n - 1) / 2);
  Graph g = random_gnm(n, m, rng);
  // Workspace outlives the loop: measures the steady-state (reused-buffer)
  // hot path, matching how BatchGroomer drives the algorithms.
  GroomingWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm(id, g, 16, {}, &ws));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

void run_on_regular(benchmark::State& state, AlgorithmId id, NodeId r) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(static_cast<std::uint64_t>(n) * 3 + 1);
  Graph g = random_regular(n, r, rng);
  GroomingWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm(id, g, 16, {}, &ws));
  }
  state.SetComplexityN(
      static_cast<benchmark::IterationCount>(g.edge_count()));
}

void register_all() {
  struct Entry {
    const char* name;
    AlgorithmId id;
  };
  for (Entry e : {Entry{"runtime/SpanT_Euler", AlgorithmId::kSpanTEuler},
                  Entry{"runtime/Algo1-Goldschmidt",
                        AlgorithmId::kGoldschmidt},
                  Entry{"runtime/Algo2-Brauner", AlgorithmId::kBrauner},
                  Entry{"runtime/Algo3-WangGu", AlgorithmId::kWangGuIcc06}}) {
    benchmark::RegisterBenchmark(e.name,
                                 [id = e.id](benchmark::State& s) {
                                   run_on_random(s, id);
                                 })
        ->RangeMultiplier(2)
        ->Range(64, 2048)
        ->Complexity();
  }
  // Regular_Euler: odd r exercises the matching-dominated path.
  benchmark::RegisterBenchmark("runtime/Regular_Euler_odd_r7",
                               [](benchmark::State& s) {
                                 run_on_regular(s, AlgorithmId::kRegularEuler,
                                                7);
                               })
      ->RangeMultiplier(2)
      ->Range(64, 1024)
      ->Complexity();
  benchmark::RegisterBenchmark("runtime/Regular_Euler_even_r8",
                               [](benchmark::State& s) {
                                 run_on_regular(s, AlgorithmId::kRegularEuler,
                                                8);
                               })
      ->RangeMultiplier(2)
      ->Range(64, 2048)
      ->Complexity();
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
