// THROUGHPUT — batch-grooming engine scaling: instances/sec vs worker
// count.  Generates a fixed pool of random traffic graphs, grooms the same
// cell list under each worker count, checks the results are bit-identical
// (the BatchGroomer determinism contract), and emits BENCH_throughput.json
// for CI artifact upload.  Plain main — wall-clock over a whole batch is
// the quantity of interest, not per-call latency, so google-benchmark's
// iteration model does not fit here.
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_support/workload.hpp"
#include "grooming/batch.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

struct Measurement {
  std::size_t workers = 0;
  double seconds = 0;
  double instances_per_sec = 0;
  long long sadm_checksum = 0;
};

long long checksum(const std::vector<BatchCellResult>& results) {
  long long sum = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Position-weighted so permuted results do not collide.
    sum += results[i].sadms * static_cast<long long>(i + 1);
  }
  return sum;
}

bool write_json(const std::string& path, NodeId n, double dense, int k,
                std::size_t instances,
                const std::vector<Measurement>& measurements) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"batch_grooming_throughput\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"workload\": {\"pattern\": \"dense\", \"n\": " << n
      << ", \"dense\": " << dense << ", \"k\": " << k
      << ", \"instances\": " << instances << "},\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    out << "    {\"workers\": " << m.workers << ", \"seconds\": " << m.seconds
        << ", \"instances_per_sec\": " << m.instances_per_sec
        << ", \"sadm_checksum\": " << m.sadm_checksum << "}"
        << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto instances = static_cast<std::size_t>(args.get_int("instances", 192));
  const auto n = static_cast<NodeId>(args.get_int("n", 64));
  const double dense = args.get_double("dense", 0.5);
  const int k = static_cast<int>(args.get_int("k", 16));
  const auto base_seed = static_cast<std::uint64_t>(
      args.get_int("base-seed", 20060101));
  std::vector<int> worker_counts = args.get_int_list("workers", {1, 2, 4});
  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const double min_time = args.get_double("min-time", 0.0);
  const std::string out_path = args.get("out", "BENCH_throughput.json");

  std::vector<Graph> graphs;
  graphs.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    Rng rng(BatchGroomer::cell_seed(base_seed, i));
    graphs.push_back(make_workload(WorkloadSpec::dense(n, dense), rng));
  }

  std::vector<BatchCell> cells(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    cells[i].graph = &graphs[i];
    cells[i].algorithm = AlgorithmId::kSpanTEuler;
    cells[i].k = k;
    cells[i].options.seed = BatchGroomer::cell_seed(base_seed ^ 0xb47cull, i);
  }

  std::cout << "== Batch grooming throughput: " << instances
            << " random instances, n=" << n << " d=" << dense << " k=" << k
            << " ==\n\n";

  std::vector<Measurement> measurements;
  for (int workers : worker_counts) {
    BatchGroomer groomer(BatchConfig{static_cast<std::size_t>(workers),
                                     /*validate=*/false,
                                     /*keep_partitions=*/false});
    // Warm-up passes so thread start-up and first-touch page faults are
    // not billed to the measured run; then repeat timed passes until the
    // accumulated measured time reaches --min-time (at least one pass).
    for (int i = 0; i < warmup; ++i) groomer.run(cells);
    Measurement m;
    m.workers = static_cast<std::size_t>(workers);
    int passes = 0;
    do {
      Stopwatch watch;
      std::vector<BatchCellResult> results = groomer.run(cells);
      m.seconds += watch.elapsed_seconds();
      ++passes;
      m.sadm_checksum = checksum(results);
    } while (m.seconds < min_time);
    m.instances_per_sec =
        static_cast<double>(instances) * passes / m.seconds;
    measurements.push_back(m);
  }

  for (const Measurement& m : measurements) {
    if (m.sadm_checksum != measurements.front().sadm_checksum) {
      std::cerr << "FAIL: results differ across worker counts ("
                << measurements.front().sadm_checksum << " vs "
                << m.sadm_checksum << " at workers=" << m.workers << ")\n";
      return 1;
    }
  }

  TextTable table("batch throughput (bit-identical across worker counts)");
  table.set_header({"workers", "seconds", "instances/sec", "speedup"});
  for (const Measurement& m : measurements) {
    table.add_row({TextTable::num(static_cast<long long>(m.workers)),
                   TextTable::num(m.seconds, 3),
                   TextTable::num(m.instances_per_sec, 1),
                   TextTable::num(m.instances_per_sec /
                                      measurements.front().instances_per_sec,
                                  2)});
  }
  table.print(std::cout);

  const unsigned cpus = std::thread::hardware_concurrency();
  for (const Measurement& m : measurements) {
    if (cpus != 0 && m.workers > cpus) {
      std::cout << "\nnote: this machine has " << cpus
                << " hardware thread" << (cpus == 1 ? "" : "s")
                << "; rows with workers > " << cpus
                << " measure oversubscription, not parallel speedup\n";
      break;
    }
  }

  if (!write_json(out_path, n, dense, k, instances, measurements)) {
    std::cerr << "FAIL: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nresults written to " << out_path << "\n";
  return 0;
}
