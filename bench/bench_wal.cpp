// WAL — durable-store append throughput across fsync policies: appends/s
// through WalWriter::append + sync on provision-sized records, for
// none / batch / always, plus a multi-threaded always run that shows how
// much group commit recovers.  fsync cost dominates and differs by
// orders of magnitude across policies, which is exactly the trade the
// `--fsync` serve flag exposes — this bench puts numbers on it.  Emits
// BENCH_wal.json for CI artifact upload and bench_compare.  Plain main
// (no google-benchmark): each run wants a fresh directory and a wall
// clock over a fixed record count.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "store/format.hpp"
#include "store/wal.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

namespace fs = std::filesystem;

struct Measurement {
  std::string mode;
  int threads = 1;
  long long records = 0;
  double seconds = 0;
  double appends_per_sec = 0;
  long long fsyncs = 0;
  double mean_batch = 0;  // records made durable per fsync
};

/// A provision-record-sized body (plan id + a couple of demand pairs),
/// the store's most common record by far.
std::string provision_body() {
  ByteWriter w;
  w.i64(7);
  encode_demand_pairs(w, {DemandPair{3, 11}, DemandPair{5, 9}});
  return w.take();
}

Measurement run_mode(const fs::path& base, FsyncPolicy policy, int threads,
                     long long records) {
  const fs::path dir =
      base / (std::string(fsync_policy_name(policy)) + "-t" +
              std::to_string(threads));
  fs::remove_all(dir);
  fs::create_directories(dir);

  const std::string body = provision_body();
  StoreMetrics metrics;
  Measurement m;
  m.mode = fsync_policy_name(policy);
  m.threads = threads;
  m.records = records;
  {
    WalOptions options;
    options.fsync = policy;
    WalWriter wal(dir.string(), 1, options, &metrics);
    Stopwatch timer;
    if (threads <= 1) {
      for (long long i = 0; i < records; ++i) {
        wal.sync(wal.append(WalRecordType::kProvision, body));
      }
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      const long long per_thread = records / threads;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&wal, &body, per_thread] {
          for (long long i = 0; i < per_thread; ++i) {
            wal.sync(wal.append(WalRecordType::kProvision, body));
          }
        });
      }
      for (std::thread& thread : pool) thread.join();
      m.records = per_thread * threads;
    }
    wal.flush();
    m.seconds = timer.elapsed_seconds();
  }
  m.appends_per_sec = static_cast<double>(m.records) / m.seconds;
  m.fsyncs = metrics.fsyncs.load();
  m.mean_batch = m.fsyncs == 0 ? 0
                               : static_cast<double>(m.records) /
                                     static_cast<double>(m.fsyncs);
  fs::remove_all(dir);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const long long records = args.get_int("records", 20000);
  // One fsync per record is the pathological case; keep it affordable.
  const long long always_records =
      args.get_int("always-records", records / 10);
  const int threads = static_cast<int>(args.get_int("threads", 4));
  const std::string json_path = args.get("json", "BENCH_wal.json");
  const fs::path base =
      args.get("dir", (fs::temp_directory_path() / "tgroom_bench_wal")
                          .string());

  std::cout << "wal bench: " << records << " provision-sized records ("
            << always_records << " for fsync=always), dir " << base
            << "\n\n";

  std::vector<Measurement> measurements;
  measurements.push_back(run_mode(base, FsyncPolicy::kNone, 1, records));
  measurements.push_back(run_mode(base, FsyncPolicy::kBatch, 1, records));
  measurements.push_back(
      run_mode(base, FsyncPolicy::kAlways, 1, always_records));
  measurements.push_back(
      run_mode(base, FsyncPolicy::kAlways, threads, always_records));
  std::error_code ec;
  fs::remove_all(base, ec);

  TextTable table("WAL append throughput (sync after every append)");
  table.set_header({"mode", "threads", "appends/s", "fsyncs", "recs/fsync"});
  for (const Measurement& m : measurements) {
    table.add_row({m.mode, TextTable::num(static_cast<long long>(m.threads)),
                   TextTable::num(m.appends_per_sec, 0),
                   TextTable::num(m.fsyncs), TextTable::num(m.mean_batch, 1)});
  }
  table.print(std::cout);

  std::ofstream out(json_path);
  JsonWriter w;
  w.begin_object();
  w.kv("benchmark", "wal_append");
  w.key("workload").begin_object();
  w.kv("records", records);
  w.kv("always_records", always_records);
  w.kv("body_bytes", static_cast<long long>(provision_body().size()));
  w.end_object();
  w.key("runs").begin_array();
  for (const Measurement& m : measurements) {
    w.begin_object();
    w.kv("mode", m.mode);
    w.kv("threads", static_cast<long long>(m.threads));
    w.kv("records", m.records);
    w.kv("seconds", m.seconds);
    w.kv("appends_per_sec", m.appends_per_sec);
    w.kv("fsyncs", m.fsyncs);
    w.kv("mean_batch", m.mean_batch);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << w.str() << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
