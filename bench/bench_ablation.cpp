// ABL-* — ablations of the design choices DESIGN.md calls out:
//   ABL-TREE:   spanning-tree policy inside SpanT_Euler (the paper's §6
//               "bound the number of components after deleting T");
//   ABL-MATCH:  matching policy inside Regular_Euler (Lemma 8's coloring
//               construction vs greedy vs true maximum matching);
//   ABL-REFINE: the §6 "denser sub-graphs" extensions (CliquePack and the
//               local-search refiner) against the paper algorithms.
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/components.hpp"
#include "algorithms/anneal.hpp"
#include "algorithms/clique_pack.hpp"
#include "algorithms/refine.hpp"
#include "algorithms/regular_euler.hpp"
#include "algorithms/spant_euler.hpp"
#include "bench_support/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

constexpr int kSeeds = 15;

void ablate_tree_policy(NodeId n) {
  std::cout << "-- ABL-TREE: spanning-tree policy in SpanT_Euler (n=" << n
            << ", mean SADMs over " << kSeeds << " seeds) --\n";
  TextTable table("");
  table.set_header({"d", "k", "bfs", "dfs", "random", "min-max-degree",
                    "bfs+smart", "mean cover size (bfs)"});
  for (double d : {0.3, 0.5, 0.8}) {
    for (int k : {4, 16, 48}) {
      std::vector<double> totals(5, 0);
      double cover = 0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
        Graph g = make_workload(WorkloadSpec::dense(n, d), rng);
        TreePolicy policies[] = {TreePolicy::kBfs, TreePolicy::kDfs,
                                 TreePolicy::kRandom,
                                 TreePolicy::kMinMaxDegree};
        for (int i = 0; i < 4; ++i) {
          GroomingOptions options;
          options.tree_policy = policies[i];
          options.seed = static_cast<std::uint64_t>(seed);
          SpanTEulerTrace trace;
          EdgePartition p = spant_euler(g, k, options, &trace);
          totals[static_cast<std::size_t>(i)] +=
              static_cast<double>(sadm_cost(g, p));
          if (i == 0) cover += static_cast<double>(trace.cover.size());
        }
        GroomingOptions smart;
        smart.smart_branches = true;
        smart.seed = static_cast<std::uint64_t>(seed);
        totals[4] += static_cast<double>(sadm_cost(g, spant_euler(g, k, smart)));
      }
      table.add_row({TextTable::num(d, 1), std::to_string(k),
                     TextTable::num(totals[0] / kSeeds, 1),
                     TextTable::num(totals[1] / kSeeds, 1),
                     TextTable::num(totals[2] / kSeeds, 1),
                     TextTable::num(totals[3] / kSeeds, 1),
                     TextTable::num(totals[4] / kSeeds, 1),
                     TextTable::num(cover / kSeeds, 2)});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

void ablate_matching_policy(NodeId n) {
  std::cout << "-- ABL-MATCH: matching policy in Regular_Euler (n=" << n
            << ", odd r, mean SADMs over " << kSeeds << " seeds) --\n";
  TextTable table("");
  table.set_header({"r", "k", "greedy", "blossom", "color-class",
                    "cover(greedy)", "cover(blossom)"});
  for (int r : {7, 15}) {
    for (int k : {4, 16, 48}) {
      double totals[3] = {0, 0, 0};
      double covers[3] = {0, 0, 0};
      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 11 + 3);
        Graph g = make_workload(
            WorkloadSpec::regular(n, static_cast<NodeId>(r)), rng);
        MatchingPolicy policies[] = {MatchingPolicy::kGreedy,
                                     MatchingPolicy::kBlossom,
                                     MatchingPolicy::kColorClass};
        for (int i = 0; i < 3; ++i) {
          GroomingOptions options;
          options.matching_policy = policies[i];
          options.seed = static_cast<std::uint64_t>(seed);
          RegularEulerTrace trace;
          EdgePartition p = regular_euler(g, k, options, &trace);
          totals[i] += static_cast<double>(sadm_cost(g, p));
          covers[i] += static_cast<double>(trace.cover.size());
        }
      }
      table.add_row({std::to_string(r), std::to_string(k),
                     TextTable::num(totals[0] / kSeeds, 1),
                     TextTable::num(totals[1] / kSeeds, 1),
                     TextTable::num(totals[2] / kSeeds, 1),
                     TextTable::num(covers[0] / kSeeds, 2),
                     TextTable::num(covers[1] / kSeeds, 2)});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

void ablate_extensions(NodeId n) {
  std::cout << "-- ABL-REFINE: §6 extensions vs the paper algorithm (n=" << n
            << ", mean SADMs over " << kSeeds << " seeds) --\n";
  TextTable table("");
  table.set_header({"d", "k", "SpanT", "SpanT+refine", "SpanT+anneal",
                    "CliquePack", "CliquePack+refine"});
  for (double d : {0.3, 0.5, 0.8}) {
    for (int k : {4, 16, 48}) {
      double totals[5] = {0, 0, 0, 0, 0};
      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 13 + 5);
        Graph g = make_workload(WorkloadSpec::dense(n, d), rng);
        EdgePartition spant = spant_euler(g, k);
        totals[0] += static_cast<double>(sadm_cost(g, spant));
        EdgePartition annealed = spant;
        refine_partition(g, spant);
        totals[1] += static_cast<double>(sadm_cost(g, spant));
        AnnealOptions anneal_options;
        anneal_options.iterations = 8000;
        anneal_options.seed = static_cast<std::uint64_t>(seed) + 1;
        anneal_partition(g, annealed, anneal_options);
        refine_partition(g, annealed);  // final polish
        totals[2] += static_cast<double>(sadm_cost(g, annealed));
        EdgePartition packed = clique_pack(g, k);
        totals[3] += static_cast<double>(sadm_cost(g, packed));
        refine_partition(g, packed);
        totals[4] += static_cast<double>(sadm_cost(g, packed));
      }
      table.add_row({TextTable::num(d, 1), std::to_string(k),
                     TextTable::num(totals[0] / kSeeds, 1),
                     TextTable::num(totals[1] / kSeeds, 1),
                     TextTable::num(totals[2] / kSeeds, 1),
                     TextTable::num(totals[3] / kSeeds, 1),
                     TextTable::num(totals[4] / kSeeds, 1)});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

void bench_refine(benchmark::State& state) {
  Rng rng(21);
  Graph g = make_workload(WorkloadSpec::dense(36, 0.5), rng);
  for (auto _ : state) {
    EdgePartition p = spant_euler(g, 16);
    refine_partition(g, p);
    benchmark::DoNotOptimize(p);
  }
}

void bench_clique_pack(benchmark::State& state) {
  Rng rng(22);
  Graph g = make_workload(WorkloadSpec::dense(36, 0.5), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clique_pack(g, 16));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 36));
  std::cout << "== Ablations ==\n\n";
  ablate_tree_policy(n);
  ablate_matching_policy(n);
  ablate_extensions(n);
  benchmark::RegisterBenchmark("ablation/spant16_plus_refine", bench_refine);
  benchmark::RegisterBenchmark("ablation/clique_pack16", bench_clique_pack);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
