// TAB-BOUNDS — the paper's §4 analytic comparison of worst-case SADM
// bounds, presented in prose there and regenerated as a table here:
//
//   Regular_Euler:  m(1+1/k)                      (even r)
//                   m(1+1/k) + 3n/(r+1) slack     (odd r, Lemma 9)
//   Algo 2 [3]:     m(1+1/k)            (even r)  /  + n/2 pairings (odd r)
//   Algo 1 [9]:     m(1+2/sqrt(k))
//   Algo 3 [19]:    m(1+1/k) + n/4
//
// For every (n, r, k) cell the table reports the four bound values plus
// the SADMs Regular_Euler actually measured (mean over seeds), verifying
// measured <= own bound and showing where Regular_Euler's guarantee beats
// the baselines' (the paper: "almost always").
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "algorithms/regular_euler.hpp"
#include "bench_support/workload.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

double bound_regular_euler(NodeId n, NodeId r, long long m, int k) {
  return static_cast<double>(
      regular_euler_cost_bound(n, r, m, k, /*components=*/1));
}

double bound_brauner(NodeId n, NodeId r, long long m, int k) {
  double base = static_cast<double>(m) * (1.0 + 1.0 / k);
  if (r % 2 == 0) return base;
  // Every node odd: ~n/2 virtual edges, each splitting a part once.
  return base + static_cast<double>(n) / 2.0;
}

double bound_goldschmidt(NodeId, NodeId, long long m, int k) {
  return static_cast<double>(m) * (1.0 + 2.0 / std::sqrt(static_cast<double>(k)));
}

double bound_wanggu(NodeId n, NodeId, long long m, int k) {
  return static_cast<double>(m) * (1.0 + 1.0 / k) +
         static_cast<double>(n) / 4.0;
}

void print_bounds(const CliArgs& args) {
  const auto n = static_cast<NodeId>(args.get_int("n", 36));
  const int seeds = static_cast<int>(args.get_int("seeds", 10));
  std::cout << "== Section 4 bound comparison (worst-case SADM guarantees, "
               "n=" << n << ") ==\n\n";
  CsvWriter csv("bounds.csv");
  csv.write_row({"n", "r", "k", "bound_regular_euler", "bound_algo1",
                 "bound_algo2", "bound_algo3", "measured_regular_euler"});

  TextTable table("Bound values (SADMs); measured = Regular_Euler mean over " +
                  std::to_string(seeds) + " seeds");
  table.set_header({"r", "k", "RegEuler-bound", "Algo1-bound", "Algo2-bound",
                    "Algo3-bound", "RegEuler-measured"});
  for (int r : {3, 7, 8, 15, 16}) {
    long long m = static_cast<long long>(n) * r / 2;
    for (int k : {4, 16, 48}) {
      double measured = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) + 99);
        Graph g = make_workload(
            WorkloadSpec::regular(n, static_cast<NodeId>(r)), rng);
        RegularEulerTrace trace;
        EdgePartition p = regular_euler(g, k, {}, &trace);
        long long cost = sadm_cost(g, p);
        measured += static_cast<double>(cost);
        // Hard invariant: measurement within the theorem's own bound.
        int components =
            r % 2 == 0 ? static_cast<int>(trace.cover.size()) : 0;
        if (cost > regular_euler_cost_bound(n, static_cast<NodeId>(r),
                                            g.real_edge_count(), k,
                                            components)) {
          std::cerr << "BOUND VIOLATION at r=" << r << " k=" << k << "\n";
          std::exit(1);
        }
      }
      measured /= seeds;
      double own = bound_regular_euler(n, static_cast<NodeId>(r), m, k);
      double b1 = bound_goldschmidt(n, static_cast<NodeId>(r), m, k);
      double b2 = bound_brauner(n, static_cast<NodeId>(r), m, k);
      double b3 = bound_wanggu(n, static_cast<NodeId>(r), m, k);
      table.add_row({std::to_string(r), std::to_string(k),
                     TextTable::num(own, 1), TextTable::num(b1, 1),
                     TextTable::num(b2, 1), TextTable::num(b3, 1),
                     TextTable::num(measured, 1)});
      csv.write_row({std::to_string(n), std::to_string(r), std::to_string(k),
                     TextTable::num(own, 2), TextTable::num(b1, 2),
                     TextTable::num(b2, 2), TextTable::num(b3, 2),
                     TextTable::num(measured, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexported to bounds.csv\n\n";
}

void bench_bound_eval(benchmark::State& state) {
  // Trivial timing anchor so the binary participates in benchmark runs.
  Rng rng(5);
  Graph g = make_workload(WorkloadSpec::regular(36, 15), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(regular_euler(g, 16));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  print_bounds(args);
  benchmark::RegisterBenchmark("bounds/regular_euler_n36_r15_k16",
                               bench_bound_eval);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
