// TAB-A2A (supplementary) — the all-to-all traffic pattern the paper's
// introduction singles out (r = n-1; studied in its refs [1], [11], [13],
// [21]).  No figure in this paper plots it, but it is the canonical
// benchmark of the surrounding literature, so the harness regenerates the
// series: for K_n, every algorithm vs the combinatorial lower bound
// max(Σ_v ceil((n-1)/k), ⌊m/k⌋·t(k) + t(m mod k)).
#include <benchmark/benchmark.h>

#include <iostream>

#include "algorithms/algorithm.hpp"
#include "gen/families.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

void print_all_to_all(const CliArgs& args) {
  std::cout << "== All-to-all traffic (K_n): SADMs vs grooming factor ==\n\n";
  std::vector<int> ks = args.get_int_list("k", {4, 8, 16, 32, 48, 64});
  for (NodeId n : {8, 12, 16}) {
    Graph g = complete_graph(n);
    TextTable table("n=" + std::to_string(n) + " (m=" +
                    std::to_string(g.edge_count()) + ")");
    std::vector<std::string> header{"k"};
    std::vector<AlgorithmId> algos{
        AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
        AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler,
        AlgorithmId::kRegularEuler, AlgorithmId::kCliquePack};
    for (AlgorithmId id : algos) header.push_back(algorithm_name(id));
    header.push_back("LB");
    table.set_header(std::move(header));
    for (int k : ks) {
      std::vector<std::string> row{std::to_string(k)};
      for (AlgorithmId id : algos) {
        EdgePartition p = run_algorithm(id, g, k);
        if (!validate_partition(g, p).ok) {
          std::cerr << "INVALID partition from " << algorithm_name(id)
                    << "\n";
          std::exit(1);
        }
        row.push_back(TextTable::num(sadm_cost(g, p)));
      }
      row.push_back(TextTable::num(partition_cost_lower_bound(g, k)));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
}

void bench_k16(benchmark::State& state, AlgorithmId id) {
  Graph g = complete_graph(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm(id, g, 16));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  print_all_to_all(args);
  benchmark::RegisterBenchmark("alltoall/SpanT_Euler_K16",
                               [](benchmark::State& s) {
                                 bench_k16(s, AlgorithmId::kSpanTEuler);
                               });
  benchmark::RegisterBenchmark("alltoall/Regular_Euler_K16",
                               [](benchmark::State& s) {
                                 bench_k16(s, AlgorithmId::kRegularEuler);
                               });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
