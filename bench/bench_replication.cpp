// Replication — can a replica keep pace with a primary ingesting at
// fsync=batch?  One in-process primary (event-loop front-end serving the
// repl_* stream ops) takes a provision workload on its service thread
// while a real ReplicationClient tails it into a second service's store
// over loopback TCP.  Reported: primary ingest rate, replica apply rate,
// the lag (records and fetch batches) at the moment ingest stops, and
// the drain time to full catch-up.  The acceptance bar from ISSUE 8 is
// steady-state lag <= 1 fetch batch.  Emits BENCH_replication.json for
// CI artifact upload and bench_compare.  Plain main (no
// google-benchmark): one wall-clocked run over a fixed record count with
// live threads is the honest shape here.
#if defined(__linux__)

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "gen/traffic_patterns.hpp"
#include "replication/replica.hpp"
#include "service/event_loop.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tgroom;

namespace fs = std::filesystem;

struct Measurement {
  std::string mode = "stream";
  long long records = 0;          // mutations ingested by the primary
  long long batch = 0;            // repl_fetch max_records
  double ingest_seconds = 0;
  double primary_appends_per_sec = 0;
  double replica_applies_per_sec = 0;
  long long lag_at_ingest_end = 0;  // records behind when ingest stopped
  double lag_batches = 0;           // same, in fetch batches
  double drain_seconds = 0;         // ingest end -> fully caught up
};

/// Clean event-loop stop: a `shutdown` request from any connection
/// drains the loop (the bench's only other client, the replication
/// stream, is already stopped by then).
void send_shutdown(int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (getaddrinfo("127.0.0.1", service.c_str(), &hints, &res) != 0) return;
  const int fd = ::socket(res->ai_family, res->ai_socktype, 0);
  if (fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0) {
    const char line[] = "{\"op\":\"shutdown\"}\n";
    (void)::send(fd, line, sizeof(line) - 1, MSG_NOSIGNAL);
    char sink[256];
    while (::recv(fd, sink, sizeof(sink), 0) > 0) {
    }
  }
  if (fd >= 0) ::close(fd);
  freeaddrinfo(res);
}

ServiceRequest parse_line(const std::string& line) {
  RequestParse parsed = parse_request(line);
  if (!parsed.request.has_value()) {
    std::cerr << "bad bench request: " << parsed.error << "\n" << line
              << "\n";
    std::exit(1);
  }
  return std::move(*parsed.request);
}

std::string hold_line(int which) {
  Rng rng(static_cast<std::uint64_t>(77 + which));
  const Graph g = random_traffic(12, 0.6, rng).traffic_graph();
  JsonWriter w;
  w.begin_object();
  w.kv("op", "groom");
  w.key("graph");
  write_graph_json(w, g);
  w.kv("k", 4);
  w.kv("seed", std::uint64_t{1});
  w.kv("hold", true);
  w.end_object();
  return w.take();
}

Measurement run_stream(const fs::path& base, long long records,
                       long long batch) {
  const fs::path primary_dir = base / "primary";
  const fs::path replica_dir = base / "replica";
  for (const fs::path& dir : {primary_dir, replica_dir}) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }

  GroomingService::clear_stop();
  ServiceConfig primary_config;
  primary_config.workers = 0;
  primary_config.data_dir = primary_dir.string();
  primary_config.fsync = FsyncPolicy::kBatch;
  primary_config.metrics_on_exit = false;
  GroomingService primary(primary_config);
  primary.open_store();
  EventLoopServer server(primary, EventLoopConfig{});
  if (!server.valid()) {
    std::cerr << "bench server failed: " << server.error() << "\n";
    std::exit(1);
  }
  std::ostringstream log;
  std::thread server_thread([&server, &log] { server.run(log); });
  const std::string primary_addr =
      "127.0.0.1:" + std::to_string(server.port());

  ServiceConfig replica_config;
  replica_config.data_dir = replica_dir.string();
  replica_config.fsync = FsyncPolicy::kBatch;
  replica_config.replica_of = primary_addr;
  replica_config.metrics_on_exit = false;
  GroomingService replica(replica_config);
  replica.open_store();
  ReplicationClientConfig link_config;
  link_config.primary = primary_addr;
  link_config.batch_records = static_cast<std::size_t>(batch);
  link_config.poll_interval_ms = 1;
  ReplicationClient client(replica, link_config);
  replica.set_replica_link(&client);
  client.start();

  // Held plans for the provision stream to extend (4 slots, round-robin
  // like the service/crash-harness workloads).
  constexpr int kPlans = 4;
  GroomingWorkspace* no_workspace = nullptr;
  for (int p = 0; p < kPlans; ++p) {
    ServiceRequest hold = parse_line(hold_line(p));
    primary.execute(hold, no_workspace);
  }

  // Pre-parse the provision stream so the clocked loop measures the
  // service ingest path (table mutation + WAL append + batch fsync),
  // not JSON parsing.
  std::vector<ServiceRequest> stream;
  stream.reserve(static_cast<std::size_t>(records));
  for (long long i = 0; i < records; ++i) {
    const int a = static_cast<int>(i % 11);
    int b = static_cast<int>((i * 5 + 3) % 11) + 1;
    if (b == a) ++b;
    stream.push_back(parse_line(
        "{\"op\":\"provision\",\"plan_id\":" +
        std::to_string(1 + i % kPlans) + ",\"add\":[[" + std::to_string(a) +
        "," + std::to_string(b) + "]]}"));
  }

  Measurement m;
  m.records = records;
  m.batch = batch;
  Stopwatch timer;
  for (ServiceRequest& request : stream) {
    primary.execute(request, no_workspace);
  }
  m.ingest_seconds = timer.elapsed_seconds();
  const std::uint64_t target = primary.applied_seq();
  m.lag_at_ingest_end =
      static_cast<long long>(target - client.applied_seq());
  m.lag_batches = batch > 0
                      ? static_cast<double>(m.lag_at_ingest_end) /
                            static_cast<double>(batch)
                      : 0.0;
  while (client.applied_seq() < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double caught_up_seconds = timer.elapsed_seconds();
  m.drain_seconds = caught_up_seconds - m.ingest_seconds;
  m.primary_appends_per_sec =
      static_cast<double>(records) / m.ingest_seconds;
  m.replica_applies_per_sec =
      static_cast<double>(target) / caught_up_seconds;

  client.stop_and_drain();
  send_shutdown(server.port());
  server_thread.join();
  replica.finalize_store();

  fs::remove_all(primary_dir);
  fs::remove_all(replica_dir);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const long long records = args.get_int("records", 5000);
  const long long batch = args.get_int("batch", 512);
  const std::string json_path = args.get("json", "BENCH_replication.json");
  const fs::path base =
      args.get("dir", (fs::temp_directory_path() / "tgroom_bench_repl")
                          .string());

  std::cout << "replication bench: " << records
            << " provisions through a live primary/replica pair (fetch "
               "batch "
            << batch << "), dir " << base << "\n\n";

  const Measurement m = run_stream(base, records, batch);
  std::error_code ec;
  fs::remove_all(base, ec);

  TextTable table("WAL-shipping replication (primary fsync=batch)");
  table.set_header({"mode", "records", "primary rec/s", "replica rec/s",
                    "lag@end", "lag batches", "drain ms"});
  table.add_row({m.mode, TextTable::num(m.records),
                 TextTable::num(m.primary_appends_per_sec, 0),
                 TextTable::num(m.replica_applies_per_sec, 0),
                 TextTable::num(m.lag_at_ingest_end),
                 TextTable::num(m.lag_batches, 2),
                 TextTable::num(m.drain_seconds * 1000.0, 1)});
  table.print(std::cout);
  std::cout << (m.lag_batches <= 1.0
                    ? "\nsteady-state lag within one fetch batch\n"
                    : "\nWARNING: lag exceeded one fetch batch\n");

  std::ofstream out(json_path);
  JsonWriter w;
  w.begin_object();
  w.kv("benchmark", "replication_stream");
  w.key("workload").begin_object();
  w.kv("records", records);
  w.kv("batch", batch);
  w.kv("plans", 4);
  w.end_object();
  w.key("runs").begin_array();
  w.begin_object();
  w.kv("mode", m.mode);
  w.kv("records", m.records);
  w.kv("batch", m.batch);
  w.kv("ingest_seconds", m.ingest_seconds);
  w.kv("primary_appends_per_sec", m.primary_appends_per_sec);
  w.kv("replica_applies_per_sec", m.replica_applies_per_sec);
  w.kv("lag_at_ingest_end", m.lag_at_ingest_end);
  w.kv("lag_batches", m.lag_batches);
  w.kv("drain_seconds", m.drain_seconds);
  w.end_object();
  w.end_array();
  w.end_object();
  out << w.str() << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

#else  // !defined(__linux__)

#include <iostream>

int main() {
  std::cout << "bench_replication requires Linux (epoll event loop)\n";
  return 0;
}

#endif  // defined(__linux__)
