// SCALE — one SpanT_Euler run at n up to 10^6: runtime, per-kernel phase
// breakdown, and peak arena bytes, on a multi-component ring-cluster
// workload (EXPERIMENTS.md SCALE).  Also the big-graph quality harness:
// every row asserts the Theorem 5 / Proposition 2 SADM bound, the minimum
// wavelength count, bit-identical parallel-vs-sequential partitions for
// every requested worker count, and walk-identical streaming-vs-
// materializing Euler decompositions — exit 1 on any violation.  Plain
// main: one run at n = 10^6 is seconds of wall clock, which does not fit
// google-benchmark's iteration model.
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "algo/rooted_tree.hpp"
#include "algo/spanning_tree.hpp"
#include "algorithms/spant_euler.hpp"
#include "algorithms/workspace.hpp"
#include "gen/random_graph.hpp"
#include "partition/edge_partition.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tgroom;

struct ScaleRow {
  NodeId n = 0;
  long long m = 0;
  int rings = 0;
  double gen_seconds = 0;
  double seconds = 0;  // full sequential spant_euler, warm workspace
  double edges_per_sec = 0;
  double forest_seconds = 0;
  double parity_seconds = 0;
  double euler_seconds = 0;
  std::size_t arena_peak_bytes = 0;
  std::size_t euler_materialize_peak_bytes = 0;
  std::size_t euler_stream_peak_bytes = 0;
  long long sadms = 0;
  long long wavelengths = 0;
  long long bound = 0;  // Theorem 5: m + ceil(m/k) + (c - 1)
  std::size_t cover_size = 0;
};

struct ParallelRow {
  NodeId n = 0;
  int workers = 0;
  double seconds = 0;
  double edges_per_sec = 0;
};

// Position-weighted FNV over part boundaries and edge ids: two partitions
// collide only if they are identical part-for-part.
std::uint64_t partition_checksum(const EdgePartition& p) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (const auto& part : p.parts) {
    mix(0x9e3779b97f4a7c15ull + part.size());
    for (EdgeId e : part) mix(static_cast<std::uint64_t>(e));
  }
  return h;
}

std::uint64_t walk_checksum(std::uint64_t h, const ArenaWalk& walk) {
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(0x9e3779b97f4a7c15ull + walk.length());
  for (NodeId v : walk.nodes) mix(static_cast<std::uint64_t>(v));
  for (EdgeId e : walk.edges) mix(static_cast<std::uint64_t>(e));
  return h;
}

bool write_json(const std::string& path, int k,
                const std::vector<ScaleRow>& rows,
                const std::vector<ParallelRow>& parallel) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"spant_euler_scale\",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"workload\": {\"pattern\": \"ring_cluster\", \"k\": " << k
      << "},\n"
      << "  \"runs\": [\n";
  bool first = true;
  auto sep = [&first, &out] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const ScaleRow& r : rows) {
    sep();
    out << "    {\"n\": " << r.n << ", \"m\": " << r.m
        << ", \"rings\": " << r.rings << ", \"seconds\": " << r.seconds
        << ", \"edges_per_sec\": " << r.edges_per_sec
        << ", \"gen_seconds\": " << r.gen_seconds
        << ", \"forest_seconds\": " << r.forest_seconds
        << ", \"parity_seconds\": " << r.parity_seconds
        << ", \"euler_seconds\": " << r.euler_seconds
        << ", \"arena_peak_bytes\": " << r.arena_peak_bytes
        << ", \"euler_materialize_peak_bytes\": "
        << r.euler_materialize_peak_bytes
        << ", \"euler_stream_peak_bytes\": " << r.euler_stream_peak_bytes
        << ", \"sadms\": " << r.sadms
        << ", \"wavelengths\": " << r.wavelengths
        << ", \"prop2_bound\": " << r.bound
        << ", \"cover_size\": " << r.cover_size << "}";
  }
  for (const ParallelRow& r : parallel) {
    sep();
    out << "    {\"n\": " << r.n << ", \"workers\": " << r.workers
        << ", \"seconds\": " << r.seconds
        << ", \"edges_per_sec\": " << r.edges_per_sec << "}";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  std::vector<int> n_list =
      args.get_int_list("n-list", {10000, 100000, 1000000});
  const int k = static_cast<int>(args.get_int("k", 16));
  std::vector<int> worker_counts = args.get_int_list("workers", {0, 2});
  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const double min_time = args.get_double("min-time", 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20250808));
  const std::string out_path = args.get("out", "BENCH_scale.json");

  std::cout << "== SpanT_Euler scale: one run per n, ring-cluster workload"
            << ", k=" << k << " ==\n\n";

  std::vector<ScaleRow> rows;
  std::vector<ParallelRow> parallel_rows;
  const GroomingOptions options;  // kBfs — the parallel-eligible default

  for (int n_int : n_list) {
    const auto n = static_cast<NodeId>(n_int);
    ScaleRow row;
    row.n = n;
    // ~1000-node rings (>= 1 ring), chords = n/2 -> m = 1.5n, and a
    // component count that scales with n so per-component parallelism and
    // walk streaming both have structure to exploit.
    row.rings = std::max(1, n_int / 1000);

    Rng gen_rng(seed);
    Stopwatch gen_watch;
    Graph g = ring_cluster_graph(n, row.rings, n / 2, gen_rng);
    row.gen_seconds = gen_watch.elapsed_seconds();
    row.m = g.edge_count();

    // -- Full sequential run (warm workspace, min-time loop) -------------
    GroomingWorkspace ws;
    EdgePartition sequential;
    for (int i = 0; i < warmup; ++i) {
      sequential = spant_euler(g, k, options, nullptr, &ws);
    }
    int passes = 0;
    do {
      Stopwatch watch;
      sequential = spant_euler(g, k, options, nullptr, &ws);
      row.seconds += watch.elapsed_seconds();
      ++passes;
    } while (row.seconds < min_time);
    row.seconds /= passes;
    row.edges_per_sec = static_cast<double>(row.m) / row.seconds;
    row.arena_peak_bytes = ws.arena.peak_bytes();
    row.sadms = sadm_cost(g, sequential);
    row.wavelengths = sequential.wavelength_count();
    const std::uint64_t seq_checksum = partition_checksum(sequential);

    // -- Quality harness: Theorem 5 bound at this scale ------------------
    {
      SpanTEulerTrace trace;
      trace.want_cover = false;  // cover_size without 10^6 heap skeletons
      EdgePartition traced = spant_euler(g, k, options, &trace);
      row.cover_size = trace.cover_size;
      row.bound =
          spant_euler_cost_bound(row.m, k, trace.g2_component_count);
      if (partition_checksum(traced) != seq_checksum) {
        std::cerr << "FAIL: traced run differs from plain run at n=" << n
                  << "\n";
        return 1;
      }
      if (row.sadms > row.bound) {
        std::cerr << "FAIL: SADM cost " << row.sadms
                  << " exceeds the Theorem 5 bound " << row.bound
                  << " at n=" << n << "\n";
        return 1;
      }
      if (!uses_min_wavelengths(g, sequential)) {
        std::cerr << "FAIL: partition does not use ceil(m/k) wavelengths"
                  << " at n=" << n << "\n";
        return 1;
      }
    }

    // -- Phase breakdown + streaming-vs-materializing Euler --------------
    {
      GroomingWorkspace pw;
      pw.prepare(g);
      Rng rng(options.seed);
      Stopwatch forest_watch;
      spanning_forest(pw.csr, options.tree_policy, &rng, pw.tree, &pw.arena);
      row.forest_seconds = forest_watch.elapsed_seconds();
      for (EdgeId e : pw.tree) pw.in_tree[static_cast<std::size_t>(e)] = 1;
      for (EdgeId e = 0; e < pw.csr.edge_count(); ++e) {
        pw.cotree[static_cast<std::size_t>(e)] =
            pw.in_tree[static_cast<std::size_t>(e)] ? 0 : 1;
      }
      for (EdgeId e = 0; e < pw.csr.edge_count(); ++e) {
        if (!pw.cotree[static_cast<std::size_t>(e)]) continue;
        const Edge& edge = pw.csr.edge(e);
        parity_flip(pw.odd_parity, edge.u);
        parity_flip(pw.odd_parity, edge.v);
      }
      Stopwatch parity_watch;
      root_forest(pw.csr, pw.tree, pw.forest, &pw.arena);
      odd_subtree_edges_parity(pw.csr, pw.forest, pw.odd_parity, pw.e_odd,
                               &pw.arena);
      row.parity_seconds = parity_watch.elapsed_seconds();
      std::copy(pw.cotree.begin(), pw.cotree.end(), pw.g2_mask.begin());
      for (EdgeId e : pw.e_odd) pw.g2_mask[static_cast<std::size_t>(e)] = 1;

      std::uint64_t materialized = 1469598103934665603ull;
      {
        MonotonicArena arena;
        Stopwatch euler_watch;
        ArenaWalkList walks = euler_decomposition(pw.csr, pw.g2_mask, arena);
        row.euler_seconds = euler_watch.elapsed_seconds();
        for (const ArenaWalk& walk : walks) {
          materialized = walk_checksum(materialized, walk);
        }
        row.euler_materialize_peak_bytes = arena.peak_bytes();
      }
      std::uint64_t streamed = 1469598103934665603ull;
      {
        MonotonicArena arena;
        euler_decomposition_stream(
            pw.csr, pw.g2_mask, arena, [&streamed](const ArenaWalk& walk) {
              streamed = walk_checksum(streamed, walk);
            });
        row.euler_stream_peak_bytes = arena.peak_bytes();
      }
      if (streamed != materialized) {
        std::cerr << "FAIL: streamed walks differ from materialized walks"
                  << " at n=" << n << "\n";
        return 1;
      }
    }

    // -- Parallel-within-one-run: timing + bit-identity ------------------
    for (int workers : worker_counts) {
      ThreadPool pool(static_cast<std::size_t>(workers));
      GroomingWorkspace pws;
      EdgePartition parallel =
          spant_euler_parallel(g, k, options, &pool, &pws);
      if (partition_checksum(parallel) != seq_checksum) {
        std::cerr << "FAIL: parallel partition differs from sequential at n="
                  << n << " workers=" << workers << "\n";
        return 1;
      }
      ParallelRow pr;
      pr.n = n;
      pr.workers = workers;
      int ppasses = 0;
      do {
        Stopwatch watch;
        parallel = spant_euler_parallel(g, k, options, &pool, &pws);
        pr.seconds += watch.elapsed_seconds();
        ++ppasses;
      } while (pr.seconds < min_time);
      pr.seconds /= ppasses;
      pr.edges_per_sec = static_cast<double>(row.m) / pr.seconds;
      parallel_rows.push_back(pr);
    }

    rows.push_back(row);
  }

  TextTable table("SpanT_Euler scale (bound + parallel/stream parity checked)");
  table.set_header({"n", "m", "seconds", "edges/sec", "arena peak MB",
                    "euler mat MB", "euler stream MB"});
  for (const ScaleRow& r : rows) {
    table.add_row(
        {TextTable::num(static_cast<long long>(r.n)), TextTable::num(r.m),
         TextTable::num(r.seconds, 3), TextTable::num(r.edges_per_sec, 0),
         TextTable::num(static_cast<double>(r.arena_peak_bytes) / 1e6, 2),
         TextTable::num(
             static_cast<double>(r.euler_materialize_peak_bytes) / 1e6, 2),
         TextTable::num(static_cast<double>(r.euler_stream_peak_bytes) / 1e6,
                        2)});
  }
  table.print(std::cout);

  TextTable ptable("parallel within one run (bit-identical to sequential)");
  ptable.set_header({"n", "workers", "seconds", "edges/sec"});
  for (const ParallelRow& r : parallel_rows) {
    ptable.add_row({TextTable::num(static_cast<long long>(r.n)),
                    TextTable::num(static_cast<long long>(r.workers)),
                    TextTable::num(r.seconds, 3),
                    TextTable::num(r.edges_per_sec, 0)});
  }
  std::cout << "\n";
  ptable.print(std::cout);

  if (!write_json(out_path, k, rows, parallel_rows)) {
    std::cerr << "FAIL: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nresults written to " << out_path << "\n";
  return 0;
}
