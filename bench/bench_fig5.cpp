// FIG5 — reproduces the paper's Figure 5: SADM counts vs grooming factor
// for random r-regular traffic graphs on n = 36 nodes, r in {7, 8, 15, 16},
// comparing the three baselines against Regular_Euler.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_support/report.hpp"
#include "bench_support/sweep.hpp"
#include "util/cli.hpp"

namespace {

using namespace tgroom;

void print_fig5(const CliArgs& args) {
  SweepConfig config;
  config.seeds = static_cast<int>(args.get_int("seeds", 20));
  config.grooming_factors =
      args.get_int_list("k", {4, 8, 12, 16, 20, 24, 28, 32, 40, 48});
  config.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  const auto n = static_cast<NodeId>(args.get_int("n", 36));

  std::cout << "== Figure 5 reproduction: SADMs vs grooming factor, "
               "regular traffic graphs ==\n\n";
  for (int r : {7, 8, 15, 16}) {
    SweepResult result =
        run_sweep(WorkloadSpec::regular(n, static_cast<NodeId>(r)),
                  figure5_algorithms(), config);
    sweep_table(result, "Figure 5, degree r=" + std::to_string(r))
        .print(std::cout);
    std::cout << '\n';
    write_sweep_csv(result, "fig5_r" + std::to_string(r) + ".csv");
  }
  std::cout << "series exported to fig5_r{7,8,15,16}.csv\n\n";
}

void timing_case(benchmark::State& state, AlgorithmId id, int r) {
  Rng rng(777);
  Graph g = make_workload(WorkloadSpec::regular(36, static_cast<NodeId>(r)),
                          rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm(id, g, 16));
  }
  state.counters["edges"] = static_cast<double>(g.edge_count());
}

void register_timings() {
  // Regular_Euler's odd-r path (matching + chaining) vs the even-r fast
  // path, against the strongest baseline.
  for (int r : {7, 8, 15, 16}) {
    std::string name =
        "fig5_time/Regular_Euler/r=" + std::to_string(r);
    benchmark::RegisterBenchmark(name.c_str(), [r](benchmark::State& s) {
      timing_case(s, AlgorithmId::kRegularEuler, r);
    });
  }
  benchmark::RegisterBenchmark("fig5_time/SpanT_Euler/r=15",
                               [](benchmark::State& s) {
                                 timing_case(s, AlgorithmId::kSpanTEuler, 15);
                               });
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  print_fig5(args);
  register_timings();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
